package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// Config parameterizes a Server.
type Config struct {
	// ResultDir roots the content-addressed result cache (required).
	ResultDir string
	// TraceDir optionally attaches a persistent trace store, so cold
	// experiment computations reuse (and warm) stored traces.
	TraceDir string
	// Parallelism bounds the experiments grid worker pool (0 keeps the
	// current setting).
	Parallelism int
	// Shards sets intra-cell parallelism — set-shard replay workers
	// per cache configuration and trace-generation encode workers —
	// within the grid's shared budget (0 keeps the current setting,
	// negative selects GOMAXPROCS). Results are bit-identical at any
	// setting.
	Shards int
	// Log, when non-nil, receives one line per notable server event
	// (startup, compute begin/end, cache write failures).
	Log func(msg string)
}

// Server is the experiment results service: an http.Handler serving
// the /v1 API over the result cache, single-flight group and
// experiments grid.
type Server struct {
	cfg     Config
	cache   *ResultCache
	store   *tracestore.Store
	mux     *http.ServeMux
	flights flightGroup
	start   time.Time

	requests atomic.Int64
	errors   atomic.Int64
	inflight atomic.Int64
	computes atomic.Int64
}

// New builds a Server: opens (creating if needed) the result cache,
// attaches the trace store when configured, and wires the routes.
//
// The experiments grid the server computes on is process-global
// (experiments.SetStore / SetParallelism), so run ONE server per
// process: constructing a second server with a different TraceDir
// rewires the first one's compute path to the new store. Sequential
// construction over the same directories (the restart pattern, and
// what the tests do) is fine.
func New(cfg Config) (*Server, error) {
	cache, err := OpenResultCache(cfg.ResultDir)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, cache: cache, start: time.Now()}
	if cfg.TraceDir != "" {
		store, err := tracestore.Open(cfg.TraceDir)
		if err != nil {
			return nil, err
		}
		s.store = store
		experiments.SetStore(store)
	}
	if cfg.Parallelism != 0 {
		experiments.SetParallelism(cfg.Parallelism)
	}
	if cfg.Shards != 0 {
		experiments.SetShards(cfg.Shards)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/traces/{bench}", s.handleTrace)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler (request counting
// included).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		s.mux.ServeHTTP(w, r)
	})
}

// ResultCache exposes the server's result cache (stats, tests).
func (s *Server) ResultCache() *ResultCache { return s.cache }

// Computes returns how many experiment computations (cache fills) the
// server has performed — the observable that verifies single-flight
// deduplication and warm-cache serving.
func (s *Server) Computes() int64 { return s.computes.Load() }

// logf reports one server event.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(fmt.Sprintf(format, args...))
	}
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON marshals v with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// fail records and writes one error response.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ok",
		"emulator_version": core.EmulatorVersion,
	})
}

// statsBody is the /v1/stats response shape.
type statsBody struct {
	UptimeSeconds   float64           `json:"uptime_seconds"`
	Requests        int64             `json:"requests"`
	Errors          int64             `json:"errors"`
	Inflight        int64             `json:"inflight"`
	Computes        int64             `json:"computes"`
	EngineRuns      int64             `json:"engine_runs"`
	ResultCache     CacheStats        `json:"result_cache"`
	TraceStore      *tracestore.Stats `json:"trace_store,omitempty"`
	EmulatorVersion string            `json:"emulator_version"`
	CodecVersion    int               `json:"codec_version"`
	Parallelism     int               `json:"parallelism"`
	Shards          int               `json:"shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body := statsBody{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		Inflight:        s.inflight.Load(),
		Computes:        s.computes.Load(),
		EngineRuns:      bench.EngineRuns(),
		ResultCache:     s.cache.Stats(),
		EmulatorVersion: core.EmulatorVersion,
		CodecVersion:    trace.CodecVersion,
		Parallelism:     experiments.Parallelism(),
		Shards:          experiments.Shards(),
	}
	if s.store != nil {
		st := s.store.Stats()
		body.TraceStore = &st
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": Registry()})
}

// handleExperiment serves one experiment: parse and canonicalize the
// parameters, consult the result cache, and on a miss compute through
// the single-flight group under a context that shutdown and client
// disconnects cancel.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	exp, ok := Lookup(name)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown experiment %q (see /v1/experiments)", name)
		return
	}
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "csv" && format != "text" {
		s.fail(w, http.StatusBadRequest, "unknown format %q (json, csv or text)", format)
		return
	}
	ps, run, err := exp.prepare(q)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%s: %v", name, err)
		return
	}
	key := CacheKey{Experiment: name, Params: canonicalParams(ps)}

	body, source, ok := s.cache.Get(key)
	if !ok {
		body, source, err = s.compute(r.Context(), key, ps, run)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Shutdown or client disconnect: the connection is
				// (about to be) gone; 503 tells any proxy the truth.
				s.fail(w, http.StatusServiceUnavailable, "%s: computation cancelled: %v", name, err)
				return
			}
			s.fail(w, http.StatusInternalServerError, "%s: %v", name, err)
			return
		}
	}

	w.Header().Set("X-Result-Source", source)
	w.Header().Set("X-Emulator-Version", core.EmulatorVersion)
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case "csv", "text":
		v, err := decodeResult(exp, body)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "%s: decoding cached result: %v", name, err)
			return
		}
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			if err := renderCSV(exp, v, w); err != nil {
				s.fail(w, http.StatusInternalServerError, "%s: rendering csv: %v", name, err)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, exp.text(v))
	}
}

// compute fills the cache for key through the single-flight group:
// concurrent identical requests share one grid run; the computation's
// context is cancelled only when every waiter has disconnected (or the
// server is shutting down, which cancels every request). A context
// error with the requester's own context still live means this flight
// was collateral damage of someone ELSE's cancellation — joining a
// flight in the window after its last previous waiter disconnected,
// or sharing a trace-store cell with a cancelled experiment's grid run
// — so the request retries: it hits the cache, starts a fresh flight
// (cancelled cells are evicted from every memo layer), or in the worst
// case joins another doomed flight and loops again.
func (s *Server) compute(ctx context.Context, key CacheKey, ps []param, run func(context.Context) (any, error)) ([]byte, string, error) {
	for {
		body, src, err := s.computeOnce(ctx, key, ps, run)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return body, src, err
	}
}

func (s *Server) computeOnce(ctx context.Context, key CacheKey, ps []param, run func(context.Context) (any, error)) ([]byte, string, error) {
	return s.flights.do(ctx, key.hash(), func(cctx context.Context) ([]byte, string, error) {
		// Double check under the flight: a racing request may have
		// completed (and cached) this cell between our miss and this
		// flight starting. peek keeps the hit/miss counters honest —
		// the handler already recorded this request's miss.
		if body, src, ok := s.cache.peek(key); ok {
			return body, src, nil
		}
		s.computes.Add(1)
		s.logf("computing %s?%s", key.Experiment, key.Params)
		t0 := time.Now()
		v, err := run(cctx)
		if err != nil {
			s.logf("compute %s?%s failed after %v: %v", key.Experiment, key.Params, time.Since(t0), err)
			return nil, "", err
		}
		body, err := marshalEnvelope(key.Experiment, ps, v)
		if err != nil {
			return nil, "", err
		}
		if err := s.cache.Put(key, body); err != nil {
			// Serve the result anyway: a full disk degrades the cache,
			// not the response.
			s.logf("result cache write for %s failed: %v", key.Experiment, err)
		}
		s.logf("computed %s?%s in %v (%d bytes)", key.Experiment, key.Params, time.Since(t0), len(body))
		return body, "computed", nil
	})
}

// marshalEnvelope renders the canonical stored/served JSON body.
func marshalEnvelope(experiment string, ps []param, result any) ([]byte, error) {
	raw, err := json.Marshal(result)
	if err != nil {
		return nil, fmt.Errorf("service: marshaling %s result: %w", experiment, err)
	}
	body, err := json.Marshal(Envelope{
		Experiment:      experiment,
		Params:          paramMap(ps),
		EmulatorVersion: core.EmulatorVersion,
		CodecVersion:    trace.CodecVersion,
		CacheVersion:    CacheVersion,
		Result:          raw,
	})
	if err != nil {
		return nil, fmt.Errorf("service: marshaling %s envelope: %w", experiment, err)
	}
	return append(body, '\n'), nil
}

// decodeResult unmarshals a cached envelope back into the entry's
// typed result.
func decodeResult(e *Experiment, body []byte) (any, error) {
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, err
	}
	v := e.fresh()
	if err := json.Unmarshal(env.Result, v); err != nil {
		return nil, err
	}
	return v, nil
}

// traceEntryBody is one /v1/traces list element.
type traceEntryBody struct {
	Key             string  `json:"key"`
	Benchmark       string  `json:"benchmark"`
	PEs             int     `json:"pes"`
	Mode            string  `json:"mode"`
	EmulatorVersion string  `json:"emulator_version"`
	Refs            int64   `json:"refs"`
	Bytes           int64   `json:"bytes"`
	BytesPerRef     float64 `json:"bytes_per_ref"`
}

func traceBody(meta trace.Meta, size int64) traceEntryBody {
	mode := "par"
	if meta.Sequential {
		mode = "seq"
	}
	k := tracestore.Key{
		Benchmark:       meta.Benchmark,
		PEs:             meta.PEs,
		Sequential:      meta.Sequential,
		EmulatorVersion: meta.EmulatorVersion,
	}
	b := traceEntryBody{
		Key:             k.String(),
		Benchmark:       meta.Benchmark,
		PEs:             meta.PEs,
		Mode:            mode,
		EmulatorVersion: meta.EmulatorVersion,
		Refs:            meta.Refs,
		Bytes:           size,
	}
	if meta.Refs > 0 {
		b.BytesPerRef = float64(size) / float64(meta.Refs)
	}
	return b
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "no trace store attached (start rapwamd with -tracedir)")
		return
	}
	entries, err := s.store.List()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "listing trace store: %v", err)
		return
	}
	out := make([]traceEntryBody, 0, len(entries))
	for _, e := range entries {
		out = append(out, traceBody(e.Meta, e.Bytes))
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTrace serves one trace cell's metadata:
// /v1/traces/{bench}?pes=N&mode=par|seq. It never generates — a
// missing cell is a 404 (warm it with tracegen or by requesting an
// experiment that needs it).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "no trace store attached (start rapwamd with -tracedir)")
		return
	}
	name := r.PathValue("bench")
	if _, ok := bench.ByName(name); !ok {
		s.fail(w, http.StatusNotFound, "unknown benchmark %q", name)
		return
	}
	q := r.URL.Query()
	pes, err := intParam(q, "pes", 1, 1, trace.MaxPEs)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode := q.Get("mode")
	if mode == "" {
		mode = "par"
	}
	if mode != "par" && mode != "seq" {
		s.fail(w, http.StatusBadRequest, "parameter mode=%q: need par or seq", mode)
		return
	}
	k := bench.StoreKey(name, pes, mode == "seq")
	meta, size, err := s.store.Meta(k)
	if err != nil {
		s.fail(w, http.StatusNotFound, "trace %v not stored: %v", k, err)
		return
	}
	writeJSON(w, http.StatusOK, traceBody(meta, size))
}

// Serve runs the server on ln (or, when ln is nil, on addr) until ctx
// is cancelled, then shuts down gracefully: cancelling ctx cancels
// every in-flight request context (BaseContext), which aborts their
// grid computations end to end, so the drain completes quickly. A
// clean ctx-initiated shutdown returns nil.
func Serve(ctx context.Context, addr string, ln net.Listener, s *Server, drain time.Duration) error {
	if drain <= 0 {
		drain = 5 * time.Second
	}
	hs := &http.Server{
		Addr:        addr,
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- hs.Serve(ln)
		} else {
			errc <- hs.ListenAndServe()
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := hs.Shutdown(sctx)
		<-errc // http.ErrServerClosed
		if err != nil {
			return fmt.Errorf("service: shutdown: %w", err)
		}
		return nil
	}
}

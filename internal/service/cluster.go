package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// proxyHeader marks a request as already proxied once. The owner
// serves a marked request entirely locally — fetch, compute, or fail —
// so a stale or disagreeing peer list can never bounce one request
// around the fleet.
const proxyHeader = "X-Rapwam-Proxied"

// maxProxyBody bounds how much of a peer's response a proxying node
// will buffer (result envelopes are KBs; this is a backstop against a
// confused or hostile owner).
const maxProxyBody = 64 << 20

// cluster is the server's view of its fleet: the static member list,
// this node's identity, and the counters for the cross-node paths.
// Cell ownership is rendezvous hashing of the result-cache content
// hash over Peers — every node computes the same owner with no
// coordination, so the fleet runs each cold cell exactly once: the
// owner computes, everyone else proxies to it (or fetches the blob a
// moment later).
type cluster struct {
	self   string
	peers  []string // every member, self included (rendezvous domain)
	others []string // peers minus self
	client *http.Client

	proxied        atomic.Int64 // cold computes served by proxying to the owner
	proxyFallbacks atomic.Int64 // owner unreachable/unusable → local compute
	proxiedServes  atomic.Int64 // proxied requests arriving from other nodes
}

// newCluster validates and normalizes the peer configuration. A list
// with fewer than two members returns nil — a solo node needs no
// cluster machinery.
func newCluster(cfg Config) (*cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, nil
	}
	if cfg.SelfURL == "" {
		return nil, fmt.Errorf("service: Peers set but SelfURL empty")
	}
	norm := func(raw string) (string, error) {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return "", fmt.Errorf("service: peer URL %q: want http(s)://host[:port]", raw)
		}
		return strings.TrimRight(raw, "/"), nil
	}
	self, err := norm(cfg.SelfURL)
	if err != nil {
		return nil, err
	}
	var peers, others []string
	seen := map[string]bool{}
	selfListed := false
	for _, raw := range cfg.Peers {
		p, err := norm(raw)
		if err != nil {
			return nil, err
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		peers = append(peers, p)
		if p == self {
			selfListed = true
		} else {
			others = append(others, p)
		}
	}
	if !selfListed {
		return nil, fmt.Errorf("service: SelfURL %q is not in Peers %v", self, peers)
	}
	if len(peers) < 2 {
		return nil, nil
	}
	client := cfg.PeerClient
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &cluster{self: self, peers: peers, others: others, client: client}, nil
}

// peerBackend builds the remote tier for one store namespace
// ("results" or "traces"): a Peer over every OTHER member's blob API,
// optionally wrapped (the cluster tests inject storage.Fault here to
// make the wire hostile).
func (c *cluster) peerBackend(store string, wrap func(storage.Backend) storage.Backend) storage.Backend {
	urls := make([]string, len(c.others))
	for i, o := range c.others {
		urls[i] = o + "/v1/blobs/" + store
	}
	var b storage.Backend = storage.NewPeer(c.client, urls)
	if wrap != nil {
		b = wrap(b)
	}
	return b
}

// ownerOf returns the member that owns a cell's compute, by rendezvous
// hash of its content address.
func (c *cluster) ownerOf(hash string) string {
	return storage.Rendezvous(hash, c.peers)[0]
}

// reachable counts members of others answering their blob API within
// timeout (healthz reporting; peer state is informational — a dead
// peer degrades the cluster tier, it does not make this node
// unhealthy).
func (c *cluster) reachable(timeout time.Duration) (up, total int) {
	total = len(c.others)
	for _, o := range c.others {
		//rapwam:allow ctxfirst detached reachability probe: bounded by its own timeout, deliberately independent of any request's lifetime
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, o+"/v1/blobs/results/", nil)
		if err == nil {
			if resp, err := c.client.Do(req); err == nil {
				resp.Body.Close()
				if resp.StatusCode < 500 {
					up++
				}
			}
		}
		cancel()
	}
	return up, total
}

// localBackend unwraps a Tiered composition to its local tier, so
// health probes measure this node's own storage rather than the
// fleet's.
func localBackend(b storage.Backend) storage.Backend {
	if t, ok := b.(interface{ Local() storage.Backend }); ok {
		return t.Local()
	}
	return b
}

// mergeDegraded unions two degraded-component lists, preserving order
// and deduplicating.
func mergeDegraded(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, c := range b {
		dup := false
		for _, e := range out {
			if e == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// clusterStatsBody is the /v1/stats cluster section.
type clusterStatsBody struct {
	Self            string               `json:"self"`
	Peers           []string             `json:"peers"`
	ProxiedComputes int64                `json:"proxied_computes"`
	ProxyFallbacks  int64                `json:"proxy_fallbacks"`
	ProxiedServes   int64                `json:"proxied_serves"`
	ResultPeer      *storage.TieredStats `json:"result_peer,omitempty"`
	TracePeer       *storage.TieredStats `json:"trace_peer,omitempty"`
}

// proxyCompute forwards a cold request for key to its owner and
// verifies the result exactly as the cache read path would — a peer's
// word is never trusted over the envelope checks. It returns
// (result, final, error): final=true errors are the owner's verdict
// on the request itself (shed, compute timeout, caller gone) and
// propagate; final=false errors mean "the owner could not help" and
// the caller falls back to computing locally.
func (s *Server) proxyCompute(ctx context.Context, owner string, key CacheKey, ps []param) (flightResult, bool, error) {
	q := make(url.Values, len(ps))
	for _, p := range ps {
		q.Set(p.name, p.value)
	}
	u := owner + "/v1/experiments/" + url.PathEscape(key.Experiment) + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return flightResult{}, false, err
	}
	req.Header.Set(proxyHeader, "1")
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return flightResult{}, true, ctx.Err()
		}
		return flightResult{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		if err != nil {
			if ctx.Err() != nil {
				return flightResult{}, true, ctx.Err()
			}
			return flightResult{}, false, err
		}
		if !verifyEnvelope(key, body) {
			return flightResult{}, false, fmt.Errorf("owner %s served an invalid envelope for %s", owner, key.Experiment)
		}
		// Cache the verified result locally so the next request here is
		// a local hit; a failed write degrades the cache, not the
		// response.
		if err := s.cache.Put(key, body); err != nil {
			storage.MarkDegraded(ctx, "result-cache")
			s.logf("result cache write for proxied %s failed: %v", key.Experiment, err)
		}
		res := flightResult{body: body, src: "proxied"}
		if d := resp.Header.Get("X-Degraded"); d != "" {
			res.degraded = strings.Split(d, ",")
		}
		s.cluster.proxied.Add(1)
		return res, false, nil
	case http.StatusTooManyRequests:
		// The owner is shedding: it is the one entitled to run this
		// compute, so its overload verdict stands — falling back to a
		// local compute would defeat the fleet's load shedding.
		return flightResult{}, true, fmt.Errorf("%w (owner %s shedding)", errShed, owner)
	case http.StatusGatewayTimeout:
		return flightResult{}, true, fmt.Errorf("%w (at owner %s)", errComputeTimeout, owner)
	default:
		return flightResult{}, false, fmt.Errorf("owner %s: status %s", owner, resp.Status)
	}
}

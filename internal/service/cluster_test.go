package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/storage"
)

// This file is the in-process multi-daemon cluster harness: N complete
// rapwamd services, each over its own in-memory backend, wired to each
// other through real HTTP (httptest listeners) exactly as a production
// fleet would be — peer blob fetches, proxied computes and health
// probes all cross real sockets. Nodes can be killed (connections
// reset), restarted over their surviving storage, or restarted over
// fresh storage (disk loss), and the peer wire can be made hostile by
// injecting storage.Fault via Config.PeerWrap.
//
// The nodes deliberately run WITHOUT trace stores: the experiments
// grid is process-global, so per-node trace stores would alias through
// it and the harness would no longer model independent daemons.
// Result caches are fully per-node, which is where all the cluster
// machinery lives.

// testNode is one fleet member: a fixed URL whose handler can be
// swapped — the live server, or a connection-resetting tombstone when
// killed — so the node's address outlives its process, like a
// restarted daemon on the same host:port.
type testNode struct {
	url     string
	hts     *httptest.Server
	handler atomic.Pointer[http.Handler]
	result  *storage.Mem
	srv     *Server
}

type testFleet struct {
	t     *testing.T
	nodes []*testNode
	urls  []string
	wrap  func(storage.Backend) storage.Backend
}

// newTestFleet starts n clustered nodes. wrap, when non-nil, wraps
// every node's peer-fetch backend (inject storage.Fault here to make
// the wire hostile; the proxy path and each node's local storage stay
// clean).
func newTestFleet(t *testing.T, n int, wrap func(storage.Backend) storage.Backend) *testFleet {
	t.Helper()
	experiments.SetStore(nil)
	f := &testFleet{t: t, wrap: wrap}
	for i := 0; i < n; i++ {
		nd := &testNode{result: storage.NewMem()}
		nd.hts = newNodeListener(nd)
		t.Cleanup(nd.hts.Close)
		nd.url = nd.hts.URL
		f.nodes = append(f.nodes, nd)
		f.urls = append(f.urls, nd.url)
	}
	for _, nd := range f.nodes {
		f.boot(nd)
	}
	return f
}

// newNodeListener gives a node its listener: a fixed URL dispatching
// to whatever handler the node currently holds.
func newNodeListener(nd *testNode) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*nd.handler.Load()).ServeHTTP(w, r)
	}))
}

// boot (re)constructs a node's server over whatever its backend
// currently holds — the restart pattern: fresh process, surviving
// storage, same address.
func (f *testFleet) boot(nd *testNode) {
	f.t.Helper()
	srv, err := New(Config{
		ResultBackend: nd.result,
		Parallelism:   2,
		Peers:         f.urls,
		SelfURL:       nd.url,
		PeerClient:    &http.Client{Timeout: 30 * time.Second},
		PeerWrap:      f.wrap,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	nd.srv = srv
	h := srv.Handler()
	nd.handler.Store(&h)
}

// kill takes a node down hard: its handler becomes a tombstone that
// resets every connection (peers see transport errors, not HTTP
// responses) and in-flight keep-alives are severed.
func (f *testFleet) kill(i int) {
	nd := f.nodes[i]
	var down http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		http.Error(w, "node down", http.StatusServiceUnavailable)
	})
	nd.handler.Store(&down)
	nd.hts.CloseClientConnections()
	nd.srv = nil
}

// get performs one real-HTTP request against node i.
func (f *testFleet) get(i int, path string) (*http.Response, []byte) {
	f.t.Helper()
	resp, err := http.Get(f.nodes[i].url + path)
	if err != nil {
		f.t.Fatalf("GET node%d %s: %v", i, path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		f.t.Fatalf("GET node%d %s: reading body: %v", i, path, err)
	}
	return resp, body
}

// sumComputes totals experiment computations across live nodes — the
// fleet-wide exactly-once observable.
func (f *testFleet) sumComputes() int64 {
	var n int64
	for _, nd := range f.nodes {
		if nd.srv != nil {
			n += nd.srv.Computes()
		}
	}
	return n
}

// owner returns the index of the node that owns key's compute.
func (f *testFleet) owner(key CacheKey) int {
	f.t.Helper()
	o := storage.Rendezvous(key.hash(), f.urls)[0]
	for i, nd := range f.nodes {
		if nd.url == o {
			return i
		}
	}
	f.t.Fatalf("owner %s not in fleet %v", o, f.urls)
	return -1
}

// corruptObject flips one byte in the middle of a stored object,
// in place — silent at-rest corruption on one node's disk.
func corruptObject(t *testing.T, b storage.Backend, name string) {
	t.Helper()
	rc, err := b.Get(name)
	if err != nil {
		t.Fatalf("reading %s to corrupt it: %v", name, err)
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	err = b.Put(name, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		t.Fatalf("writing corrupted %s: %v", name, err)
	}
}

// TestClusterExactlyOnce is the headline property: a fleet of three
// daemons hit by 48 concurrent requests for the same cold cell
// performs exactly ONE computation cluster-wide — local single-flight
// collapses each node's waiters, cross-node single-flight routes the
// three survivors to the cell's rendezvous owner — and all 48
// responses are byte-identical. A warm round afterwards computes and
// emulates nothing anywhere.
func TestClusterExactlyOnce(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	experiments.ResetTraceCache()
	bench.ResetEngineRuns()

	const path = "/v1/experiments/fig2?pes=1,2"
	const clients = 48
	bodies := make([][]byte, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := f.get(i%len(f.nodes), path)
			codes[i], bodies[i] = resp.StatusCode, body
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	if n := f.sumComputes(); n != 1 {
		t.Fatalf("fleet performed %d computations for one cell, want exactly 1", n)
	}
	coldRuns := bench.EngineRuns()
	if coldRuns == 0 {
		t.Fatal("cold sweep ran no emulator at all")
	}

	// Warm round: every node must now serve the cell without another
	// computation or emulator run anywhere in the fleet.
	for i := range f.nodes {
		resp, body := f.get(i, path)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, bodies[0]) {
			t.Fatalf("warm node %d: status %d, identical=%v", i, resp.StatusCode, bytes.Equal(body, bodies[0]))
		}
		if src := resp.Header.Get("X-Result-Source"); src == "computed" || src == "proxied" {
			t.Fatalf("warm node %d re-computed (source %q)", i, src)
		}
	}
	if n := f.sumComputes(); n != 1 {
		t.Fatalf("warm round raised fleet computations to %d", n)
	}
	if got := bench.EngineRuns(); got != coldRuns {
		t.Fatalf("warm round ran the emulator (%d -> %d runs)", coldRuns, got)
	}
}

// TestClusterByteIdentityAcrossNodesAndRestarts: a cell computed once
// is served byte-identically by every member, by every member after a
// fleet-wide restart, and — via peer fetch — by a member that rejoined
// after losing its disk, all with zero new computations.
func TestClusterByteIdentityAcrossNodesAndRestarts(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	const path = "/v1/experiments/table2?pes=2"

	resp, golden := f.get(0, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, golden)
	}
	for i := range f.nodes {
		if resp, body := f.get(i, path); resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden) {
			t.Fatalf("node %d: status %d, identical=%v", i, resp.StatusCode, bytes.Equal(body, golden))
		}
	}

	// Fleet-wide restart over surviving storage: every node serves from
	// its own disk, computing nothing.
	for _, nd := range f.nodes {
		f.boot(nd)
	}
	for i := range f.nodes {
		resp, body := f.get(i, path)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden) {
			t.Fatalf("restarted node %d: status %d, identical=%v", i, resp.StatusCode, bytes.Equal(body, golden))
		}
	}
	if n := f.sumComputes(); n != 0 {
		t.Fatalf("restarted fleet computed %d times serving a stored cell", n)
	}

	// Node 2 loses its disk and rejoins empty: the cell comes back over
	// peer fetch, not recomputation, and writes through locally.
	f.nodes[2].result = storage.NewMem()
	f.boot(f.nodes[2])
	resp, body := f.get(2, path)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden) {
		t.Fatalf("rejoined node: status %d, identical=%v", resp.StatusCode, bytes.Equal(body, golden))
	}
	if src := resp.Header.Get("X-Result-Source"); src != "peer" {
		t.Fatalf("rejoined node served from %q, want peer", src)
	}
	if n := f.nodes[2].srv.Computes(); n != 0 {
		t.Fatalf("rejoined node computed %d times", n)
	}
	st := f.nodes[2].srv.resultTier.Stats()
	if st.PeerHits != 1 || st.WriteThroughs != 1 {
		t.Fatalf("rejoined node tier stats %+v, want 1 peer hit written through", st)
	}
}

// TestClusterKilledOwnerDegradesThenRejoinsWarm: with a cell's owner
// dead, a surviving node falls back to computing locally (the response
// says so via X-Degraded: peer-proxy — a dead peer costs duplicate
// work, never an outage) and the restarted owner then warms itself
// from the survivor over peer fetch without recomputing.
func TestClusterKilledOwnerDegradesThenRejoinsWarm(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	const path = "/v1/experiments/fig2?pes=2"
	key := CacheKey{Experiment: "fig2", Params: "pes=2"}
	owner := f.owner(key)
	requester := (owner + 1) % len(f.nodes)

	f.kill(owner)
	resp, golden := f.get(requester, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("with owner down: status %d: %s", resp.StatusCode, golden)
	}
	if d := resp.Header.Get("X-Degraded"); !strings.Contains(d, "peer-proxy") {
		t.Fatalf("X-Degraded %q does not name peer-proxy", d)
	}
	if src := resp.Header.Get("X-Result-Source"); src != "computed" {
		t.Fatalf("fallback served from %q, want computed", src)
	}
	if n := f.nodes[requester].srv.Computes(); n != 1 {
		t.Fatalf("survivor computed %d times, want 1", n)
	}
	if n := f.nodes[requester].srv.cluster.proxyFallbacks.Load(); n != 1 {
		t.Fatalf("survivor recorded %d proxy fallbacks, want 1", n)
	}

	// The owner rejoins (same empty storage, same address) and serves
	// the cell warm off the survivor's copy.
	f.boot(f.nodes[owner])
	resp, body := f.get(owner, path)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden) {
		t.Fatalf("rejoined owner: status %d, identical=%v", resp.StatusCode, bytes.Equal(body, golden))
	}
	if src := resp.Header.Get("X-Result-Source"); src != "peer" {
		t.Fatalf("rejoined owner served from %q, want peer", src)
	}
	if n := f.nodes[owner].srv.Computes(); n != 0 {
		t.Fatalf("rejoined owner computed %d times", n)
	}
}

// TestClusterChaosOnWireNeverServesCorrupt points storage.Fault at the
// peer transport — read errors, failed operations and in-flight bit
// flips on every blob a node fetches from its peers — and demands the
// client contract hold anyway: every response is a 200 byte-identical
// to the fault-free golden (possibly flagged X-Degraded), because a
// peer's bytes go through the same envelope verification as local ones
// and verification failure is a miss, never a serve.
func TestClusterChaosOnWireNeverServesCorrupt(t *testing.T) {
	// Fault-free golden bodies, from a solo server sharing nothing with
	// the fleet but the deterministic computation.
	solo, err := New(Config{ResultBackend: storage.NewMem(), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	cells := []string{
		"/v1/experiments/fig2?pes=1,2",
		"/v1/experiments/fig2?pes=2",
		"/v1/experiments/table2?pes=2",
	}
	golden := make(map[string][]byte, len(cells))
	sh := solo.Handler()
	for _, cell := range cells {
		w := getOK(t, sh, cell)
		golden[cell] = append([]byte(nil), w.Body.Bytes()...)
	}

	f := newTestFleet(t, 3, func(b storage.Backend) storage.Backend {
		return storage.NewFault(b, storage.Faults{
			Seed:     7,
			ReadErr:  0.3,
			OpErr:    0.2,
			ReadFlip: 0.3,
		})
	})
	for round := 0; round < 4; round++ {
		for _, cell := range cells {
			for i := range f.nodes {
				resp, body := f.get(i, cell)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("round %d node %d %s: status %d: %s", round, i, cell, resp.StatusCode, body)
				}
				if !bytes.Equal(body, golden[cell]) {
					t.Fatalf("round %d node %d %s: 200 body differs from fault-free golden (degraded=%q)",
						round, i, cell, resp.Header.Get("X-Degraded"))
				}
			}
		}
	}
	if n := f.sumComputes(); n < int64(len(cells)) {
		t.Fatalf("fleet computed %d cells, want at least %d", n, len(cells))
	}
}

// TestClusterCorruptPeerBlobHeals: one node's stored copy of a cell
// rots on disk. A peer fetching that blob rejects it at envelope
// verification, quarantines its own write-through, and recovers the
// correct bytes (proxy → the owner itself re-verifies, quarantines and
// recomputes) — both nodes end up healed byte-identically and the
// corrupt bytes are never served.
func TestClusterCorruptPeerBlobHeals(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	const path = "/v1/experiments/table2?pes=2"
	key := CacheKey{Experiment: "table2", Params: "pes=2"}
	owner := f.owner(key)
	other := 1 - owner

	// Warm the owner only: request AT the owner so the other node never
	// caches a copy.
	resp, golden := f.get(owner, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, golden)
	}

	// Rot the owner's stored blob, then restart both nodes: memory
	// layers gone, the other node's storage empty — every path now leads
	// through the corrupt object.
	corruptObject(t, f.nodes[owner].result, key.name())
	f.nodes[other].result = storage.NewMem()
	for _, nd := range f.nodes {
		f.boot(nd)
	}

	resp, body := f.get(other, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("through corrupt peer blob: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, golden) {
		t.Fatal("healed response is not byte-identical to the original")
	}
	if n := f.nodes[owner].srv.Computes(); n != 1 {
		t.Fatalf("owner recomputed %d times healing, want 1", n)
	}
	quar := f.nodes[owner].srv.cache.Stats().Quarantines +
		f.nodes[other].srv.cache.Stats().Quarantines
	if quar < 2 {
		t.Fatalf("fleet quarantined %d corrupt copies, want >= 2 (fetcher's write-through and owner's original)", quar)
	}

	// Both nodes now serve the healed cell from verified local storage.
	for i := range f.nodes {
		resp, body := f.get(i, path)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, golden) {
			t.Fatalf("healed node %d: status %d, identical=%v", i, resp.StatusCode, bytes.Equal(body, golden))
		}
	}
}

// TestClusterStatsAndHealth: the cluster section of /v1/stats reports
// identity, peers and the cross-node counters, and healthz reports
// peer reachability without going unhealthy when a peer dies.
func TestClusterStatsAndHealth(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	const path = "/v1/experiments/fig2?pes=2"
	key := CacheKey{Experiment: "fig2", Params: "pes=2"}
	owner := f.owner(key)
	other := 1 - owner

	// A request at the non-owner proxies to the owner.
	if resp, body := f.get(other, path); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	} else if src := resp.Header.Get("X-Result-Source"); src != "proxied" {
		t.Fatalf("non-owner cold serve source %q, want proxied", src)
	}

	resp, stats := f.get(other, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		fmt.Sprintf("%q", f.nodes[other].url), `"proxied_computes":1`, `"result_peer"`,
	} {
		if !strings.Contains(string(stats), want) {
			t.Fatalf("stats body missing %s:\n%s", want, stats)
		}
	}
	if n := f.nodes[owner].srv.cluster.proxiedServes.Load(); n != 1 {
		t.Fatalf("owner served %d proxied requests, want 1", n)
	}

	// healthz: all peers up, then one down — the survivor stays healthy
	// and reports the degraded peer set.
	if resp, body := f.get(other, "/v1/healthz"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), `"peers":"ok (1/1 reachable)"`) {
		t.Fatalf("healthz with peers up: status %d body %s", resp.StatusCode, body)
	}
	f.kill(owner)
	if resp, body := f.get(other, "/v1/healthz"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), `"peers":"degraded (0/1 reachable)"`) {
		t.Fatalf("healthz with a peer down: status %d body %s", resp.StatusCode, body)
	}
}

// TestClusterConfigValidation: malformed cluster configs fail
// construction loudly; degenerate ones (solo, or self-only lists)
// cleanly disable clustering.
func TestClusterConfigValidation(t *testing.T) {
	mem := func() storage.Backend { return storage.NewMem() }
	for _, tc := range []struct {
		name    string
		cfg     Config
		wantErr string // "" = must succeed without a cluster
	}{
		{"solo", Config{ResultBackend: mem()}, ""},
		{"self-only", Config{ResultBackend: mem(),
			Peers: []string{"http://a:1"}, SelfURL: "http://a:1"}, ""},
		{"duplicate-self-only", Config{ResultBackend: mem(),
			Peers: []string{"http://a:1", "http://a:1/"}, SelfURL: "http://a:1"}, ""},
		{"missing-self", Config{ResultBackend: mem(),
			Peers: []string{"http://a:1", "http://b:1"}}, "SelfURL empty"},
		{"self-not-listed", Config{ResultBackend: mem(),
			Peers: []string{"http://a:1", "http://b:1"}, SelfURL: "http://c:1"}, "not in Peers"},
		{"bad-url", Config{ResultBackend: mem(),
			Peers: []string{"http://a:1", "nonsense"}, SelfURL: "http://a:1"}, "want http(s)"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if s.cluster != nil {
					t.Fatalf("degenerate peer config built a cluster: %+v", s.cluster)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New error %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

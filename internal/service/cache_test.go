package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

func testEnvelope(t *testing.T, key CacheKey) []byte {
	t.Helper()
	body, err := marshalEnvelope(key.Experiment, []param{{"pes", "2"}}, map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestResultCacheRoundTrip(t *testing.T) {
	c, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{Experiment: "fig4", Params: "pes=2"}
	if _, _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	body := testEnvelope(t, key)
	if err := c.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, source, ok := c.Get(key)
	if !ok || source != "memory" || !bytes.Equal(got, body) {
		t.Fatalf("Get after Put: ok=%v source=%q identical=%v", ok, source, bytes.Equal(got, body))
	}

	// A fresh cache over the same directory serves the identical bytes
	// from disk — the daemon-restart path.
	c2, err := OpenResultCache(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got2, source2, ok := c2.Get(key)
	if !ok || source2 != "disk" || !bytes.Equal(got2, body) {
		t.Fatalf("Get after reopen: ok=%v source=%q identical=%v", ok, source2, bytes.Equal(got2, body))
	}
	// And the second Get is a memory hit.
	if _, source3, _ := c2.Get(key); source3 != "memory" {
		t.Fatalf("second Get after reopen: source=%q, want memory", source3)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit + 1 mem hit", st)
	}
}

func TestResultCacheKeyDistinguishesParams(t *testing.T) {
	keys := []CacheKey{
		{Experiment: "fig4", Params: "pes=1,2"},
		{Experiment: "fig4", Params: "pes=1,4"},
		{Experiment: "fig2", Params: "pes=1,2"},
		{Experiment: "fig2", Params: ""},
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k.hash()] {
			t.Fatalf("key %+v collides", k)
		}
		seen[k.hash()] = true
	}
}

func TestResultCacheRejectsForeignEnvelope(t *testing.T) {
	c, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{Experiment: "fig4", Params: "pes=2"}
	// A file at the right path carrying the wrong experiment (or plain
	// garbage) must read as a miss, not as a hit for the wrong cell.
	wrong, err := marshalEnvelope("table2", nil, map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Path(key), wrong, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key); ok {
		t.Fatal("mismatched envelope served as a hit")
	}
	if err := os.WriteFile(c.Path(key), []byte("{corrupt"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key); ok {
		t.Fatal("corrupt envelope served as a hit")
	}
}

func TestResultCacheOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "put-zzz.json.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tracestore.StaleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "put-live.json.tmp")
	if err := os.WriteFile(fresh, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenResultCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp survived OpenResultCache")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("young temp should survive: %v", err)
	}
}

func TestEnvelopeCarriesVersions(t *testing.T) {
	key := CacheKey{Experiment: "mlips", Params: "cache=256"}
	body := testEnvelope(t, key)
	if !verifyEnvelope(CacheKey{Experiment: key.Experiment, Params: "pes=2"}, body) {
		t.Fatal("fresh envelope fails verification")
	}
	// A params mismatch at the right path must fail verification.
	if verifyEnvelope(CacheKey{Experiment: key.Experiment, Params: "pes=4"}, body) {
		t.Fatal("wrong-params envelope passed verification")
	}
	h := key.hash()
	if len(h) != 12 {
		t.Fatalf("hash %q not 12 hex digits", h)
	}
	// The key hash must depend on the emulator and codec versions (it
	// is recomputed here from the shared ContentHash helper).
	want := tracestore.ContentHash(key.Experiment, key.Params, core.EmulatorVersion,
		fmt.Sprintf("codec%d", trace.CodecVersion), fmt.Sprintf("rc%d", CacheVersion))
	if h != want {
		t.Fatalf("hash = %s, want shared ContentHash form %s", h, want)
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
)

// newTestServer builds a server over fresh temp directories (its own
// result cache and trace store) and detaches the global trace store on
// cleanup.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	return newTestServerAt(t, t.TempDir(), t.TempDir())
}

func newTestServerAt(t *testing.T, resultDir, traceDir string) *Server {
	t.Helper()
	s, err := New(Config{ResultDir: resultDir, TraceDir: traceDir, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { experiments.SetStore(nil) })
	return s
}

// get performs one request against the handler and returns the
// response.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getOK(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := get(t, h, path)
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, w.Code, w.Body.String())
	}
	return w
}

// injectExperiment registers a test-only experiment for the duration
// of the test.
func injectExperiment(t *testing.T, e *Experiment) {
	t.Helper()
	registry = append(registry, e)
	t.Cleanup(func() {
		for i, x := range registry {
			if x == e {
				registry = append(registry[:i], registry[i+1:]...)
				return
			}
		}
	})
}

// blockingExperiment is an injectable experiment whose computation
// parks until its context is cancelled (or unblock is closed),
// reporting lifecycle events on channels — the deterministic probe for
// the disconnect/shutdown cancellation paths.
type blockingExperiment struct {
	exp       *Experiment
	started   chan struct{}
	cancelled chan struct{}
	unblock   chan struct{}
}

func newBlockingExperiment(t *testing.T, name string) *blockingExperiment {
	b := &blockingExperiment{
		started:   make(chan struct{}, 64),
		cancelled: make(chan struct{}),
		unblock:   make(chan struct{}),
	}
	var once sync.Once
	b.exp = &Experiment{
		Name:    name,
		Summary: "test-only blocking experiment",
		prepare: func(q url.Values) ([]param, func(context.Context) (any, error), error) {
			return nil, func(ctx context.Context) (any, error) {
				b.started <- struct{}{}
				select {
				case <-ctx.Done():
					once.Do(func() { close(b.cancelled) })
					return nil, ctx.Err()
				case <-b.unblock:
					return &Table1Result{Rows: []Table1Row{{Frame: "ok"}}}, nil
				}
			}, nil
		},
		fresh: func() any { return new(Table1Result) },
		csv:   registryMust(t, "table1").csv,
		text:  func(any) string { return "blocking\n" },
	}
	injectExperiment(t, b.exp)
	return b
}

func registryMust(t *testing.T, name string) *Experiment {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q missing from registry", name)
	}
	return e
}

func decodeEnvelope(t *testing.T, body []byte) Envelope {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding envelope: %v\n%s", err, body)
	}
	return env
}

func TestHealthzAndStats(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	w := getOK(t, h, "/v1/healthz")
	var hz map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil || hz["status"] != "ok" {
		t.Fatalf("healthz body %s (err %v)", w.Body.String(), err)
	}
	w = getOK(t, h, "/v1/stats")
	var st statsBody
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if st.Requests < 1 || st.EmulatorVersion == "" || st.TraceStore == nil {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExperimentListDocumentsEveryEndpoint(t *testing.T) {
	s := newTestServer(t)
	w := getOK(t, s.Handler(), "/v1/experiments")
	var body struct {
		Experiments []Experiment `json:"experiments"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	want := []string{"table1", "fig2", "table2", "table3", "fig4", "mlips", "bus", "ablations"}
	names := map[string]bool{}
	for _, e := range body.Experiments {
		names[e.Name] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("experiment %q missing from /v1/experiments", n)
		}
	}
}

// TestEndpointRoundTrips exercises every experiment endpoint in every
// format over one shared server (cheap parameters where the experiment
// accepts them), checking envelope shape and cache-layer progression.
func TestEndpointRoundTrips(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	cases := []struct {
		name string
		path string
	}{
		{"table1", "/v1/experiments/table1"},
		{"fig2", "/v1/experiments/fig2?pes=1,2"},
		{"table2", "/v1/experiments/table2?pes=2"},
		{"table3", "/v1/experiments/table3"},
		{"fig4", "/v1/experiments/fig4?pes=1,2&sizes=64,256"},
		{"mlips", "/v1/experiments/mlips?cache=64"},
		{"bus", "/v1/experiments/bus?pes=2&cache=64&desbench=qsort-150"},
		{"ablations", "/v1/experiments/ablations?pes=2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := getOK(t, h, tc.path)
			if got := w.Header().Get("X-Result-Source"); got != "computed" {
				t.Errorf("cold source = %q, want computed", got)
			}
			env := decodeEnvelope(t, w.Body.Bytes())
			if env.Experiment != tc.name {
				t.Errorf("envelope experiment = %q, want %q", env.Experiment, tc.name)
			}
			if len(env.Result) == 0 {
				t.Error("empty result payload")
			}
			// Identical request: memory hit, byte-identical.
			w2 := getOK(t, h, tc.path)
			if got := w2.Header().Get("X-Result-Source"); got != "memory" {
				t.Errorf("warm source = %q, want memory", got)
			}
			if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
				t.Error("warm body differs from cold body")
			}
			// CSV and text renderings succeed and are non-empty.
			sep := "?"
			if bytes.ContainsRune([]byte(tc.path), '?') {
				sep = "&"
			}
			for _, format := range []string{"csv", "text"} {
				wf := getOK(t, h, tc.path+sep+"format="+format)
				if wf.Body.Len() == 0 {
					t.Errorf("%s rendering empty", format)
				}
			}
		})
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	cases := []struct {
		path string
		code int
	}{
		{"/v1/experiments/nope", http.StatusNotFound},
		{"/v1/experiments/table2?pes=0", http.StatusBadRequest},
		{"/v1/experiments/table2?pes=65", http.StatusBadRequest},
		{"/v1/experiments/fig2?maxpes=999", http.StatusBadRequest},
		{"/v1/experiments/fig4?sizes=abc", http.StatusBadRequest},
		{"/v1/experiments/fig4?pes=1x", http.StatusBadRequest},
		{"/v1/experiments/table1?format=xml", http.StatusBadRequest},
		{"/v1/experiments/bus?desbench=nope", http.StatusBadRequest},
		{"/v1/experiments/mlips?target=-1", http.StatusBadRequest},
		{"/v1/traces/unknown-bench-name", http.StatusNotFound},
		{"/v1/traces/qsort?pes=99", http.StatusBadRequest},
		{"/v1/traces/qsort?mode=sideways", http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := get(t, h, tc.path)
		if w.Code != tc.code {
			t.Errorf("GET %s: status %d, want %d (%s)", tc.path, w.Code, tc.code, w.Body.String())
		}
		var e apiError
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: error body %q not a JSON error", tc.path, w.Body.String())
		}
	}
}

func TestTraceEndpoints(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	// Warm one cell through an experiment, then read it back.
	getOK(t, h, "/v1/experiments/table2?pes=2")
	w := getOK(t, h, "/v1/traces")
	var list struct {
		Traces []traceEntryBody `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("trace store empty after an experiment computation")
	}
	w = getOK(t, h, "/v1/traces/qsort?pes=2&mode=par")
	var tb traceEntryBody
	if err := json.Unmarshal(w.Body.Bytes(), &tb); err != nil {
		t.Fatal(err)
	}
	if tb.Benchmark != "qsort" || tb.PEs != 2 || tb.Mode != "par" || tb.Refs <= 0 {
		t.Fatalf("trace metadata = %+v", tb)
	}
	// A cell nobody generated is a 404, not a generation.
	if w := get(t, h, "/v1/traces/zebra?pes=7"); w.Code != http.StatusNotFound {
		t.Fatalf("missing cell: status %d", w.Code)
	}
}

// TestSingleFlight is the acceptance test for concurrent deduplication:
// 32 concurrent identical cold requests perform exactly one
// computation and receive byte-identical bodies; the engine-run cost
// equals one cold computation's.
func TestSingleFlight(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bench.ResetEngineRuns()
	const n = 32
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/experiments/fig2?pes=1,2")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs", i)
		}
	}
	if got := s.Computes(); got != 1 {
		t.Fatalf("%d concurrent identical requests performed %d computations, want 1", n, got)
	}
	coldRuns := bench.EngineRuns()
	if coldRuns == 0 {
		t.Fatal("cold computation performed no engine runs — test is vacuous")
	}

	// Warm traffic performs zero further computations and zero engine
	// runs.
	resp, err := http.Get(ts.URL + "/v1/experiments/fig2?pes=1,2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := s.Computes(); got != 1 {
		t.Fatalf("warm request recomputed (computes = %d)", got)
	}
	if got := bench.EngineRuns(); got != coldRuns {
		t.Fatalf("warm request ran the emulator (%d -> %d runs)", coldRuns, got)
	}
}

// TestWarmCacheBitIdentity is the acceptance test for cache
// correctness: the served result equals the direct driver's, bodies
// are byte-identical across requests and daemon restarts, and warm
// serving performs zero emulator runs.
func TestWarmCacheBitIdentity(t *testing.T) {
	resultDir, traceDir := t.TempDir(), t.TempDir()
	s := newTestServerAt(t, resultDir, traceDir)
	h := s.Handler()

	const fig4Path = "/v1/experiments/fig4?pes=1,2&sizes=64,256"
	cold := getOK(t, h, fig4Path)
	runsAfterCold := bench.EngineRuns()

	// Bit-identity vs the direct driver, over the same (now warm)
	// trace store.
	var env Envelope
	if err := json.Unmarshal(cold.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	var served experiments.Figure4
	if err := json.Unmarshal(env.Result, &served); err != nil {
		t.Fatal(err)
	}
	direct, err := experiments.RunFigure4(context.Background(), []int{1, 2}, []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&served, direct) {
		t.Fatalf("served fig4 differs from direct driver:\nserved: %+v\ndirect: %+v", &served, direct)
	}

	t3cold := getOK(t, h, "/v1/experiments/table3")
	env = decodeEnvelope(t, t3cold.Body.Bytes())
	var servedT3 experiments.Table3
	if err := json.Unmarshal(env.Result, &servedT3); err != nil {
		t.Fatal(err)
	}
	directT3, err := experiments.RunTable3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&servedT3, directT3) {
		t.Fatal("served table3 differs from direct driver")
	}

	// Daemon restart: a fresh server over the same directories serves
	// the identical bytes from disk with zero computations and zero
	// emulator runs.
	runsBeforeRestart := bench.EngineRuns()
	s2 := newTestServerAt(t, resultDir, traceDir)
	warm := getOK(t, s2.Handler(), fig4Path)
	if got := warm.Header().Get("X-Result-Source"); got != "disk" {
		t.Fatalf("restarted daemon source = %q, want disk", got)
	}
	if !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
		t.Fatal("restarted daemon served different bytes")
	}
	if got := s2.Computes(); got != 0 {
		t.Fatalf("restarted daemon recomputed (computes = %d)", got)
	}
	if got := bench.EngineRuns(); got != runsBeforeRestart {
		t.Fatalf("restarted daemon ran the emulator (%d -> %d)", runsBeforeRestart, got)
	}
	if runsAfterCold == 0 {
		t.Fatal("cold fig4 performed no engine runs — test is vacuous")
	}
}

// TestClientDisconnectCancelsCompute verifies the reference-counted
// flight: when the only waiting client disconnects, the computation's
// context is cancelled, and the failed flight is not memoized.
func TestClientDisconnectCancelsCompute(t *testing.T) {
	s := newTestServer(t)
	b := newBlockingExperiment(t, "test-block")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/experiments/test-block", nil)
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	select {
	case <-b.started:
	case <-time.After(10 * time.Second):
		t.Fatal("computation never started")
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("disconnected request reported success")
	}
	select {
	case <-b.cancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("computation context not cancelled after the last client disconnected")
	}
	// The cancelled flight must not be cached as a failure: a new
	// request recomputes (and this time completes).
	close(b.unblock)
	resp, err := http.Get(ts.URL + "/v1/experiments/test-block")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("retry after cancelled flight: status %d: %s", resp.StatusCode, body)
	}
}

// TestOneDisconnectDoesNotAbortOtherWaiters: with two clients on the
// same flight, one disconnecting must not cancel the computation the
// other still wants.
func TestOneDisconnectDoesNotAbortOtherWaiters(t *testing.T) {
	s := newTestServer(t)
	b := newBlockingExperiment(t, "test-block2")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx1, cancel1 := context.WithCancel(context.Background())
	req1, _ := http.NewRequestWithContext(ctx1, "GET", ts.URL+"/v1/experiments/test-block2", nil)
	done1 := make(chan struct{})
	go func() {
		resp, _ := http.DefaultClient.Do(req1)
		if resp != nil {
			resp.Body.Close()
		}
		close(done1)
	}()
	select {
	case <-b.started:
	case <-time.After(10 * time.Second):
		t.Fatal("computation never started")
	}
	done2 := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/experiments/test-block2")
		if err != nil {
			done2 <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		done2 <- resp.StatusCode
	}()
	// Let the second client join the flight, then disconnect the first.
	time.Sleep(100 * time.Millisecond)
	cancel1()
	<-done1
	select {
	case <-b.cancelled:
		t.Fatal("one client's disconnect cancelled a computation another client was waiting on")
	case <-time.After(300 * time.Millisecond):
	}
	close(b.unblock)
	if code := <-done2; code != http.StatusOK {
		t.Fatalf("surviving waiter got status %d", code)
	}
}

// TestServeGracefulShutdown is the acceptance test for shutdown:
// cancelling the serve context aborts in-flight computations end to
// end and Serve returns promptly and cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	s := newTestServer(t)
	b := newBlockingExperiment(t, "test-block3")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, "", ln, s, 5*time.Second) }()

	reqDone := make(chan struct{})
	go func() {
		resp, _ := http.Get("http://" + ln.Addr().String() + "/v1/experiments/test-block3")
		if resp != nil {
			resp.Body.Close()
		}
		close(reqDone)
	}()
	select {
	case <-b.started:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight computation never started")
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v on clean shutdown", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("Serve did not return after context cancellation — shutdown did not cancel in-flight work")
	}
	select {
	case <-b.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not cancel the in-flight computation")
	}
	select {
	case <-reqDone:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	// Neither store carries temp droppings after shutdown.
	for _, dir := range []string{s.cache.Dir(), s.store.Dir()} {
		assertNoTemps(t, dir)
	}
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("temp droppings in %s: %v", dir, matches)
	}
}

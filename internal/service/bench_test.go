package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/experiments"
)

// benchServer builds a server with a warmed result cache for the given
// path: the serving-layer benchmarks measure the steady state the
// daemon lives in (every request a cache hit), not the one-off grid
// computation.
func benchServer(b *testing.B, warmPath string) *httptest.Server {
	b.Helper()
	s, err := New(Config{ResultDir: b.TempDir(), TraceDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { experiments.SetStore(nil) })
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + warmPath)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warming %s: status %d", warmPath, resp.StatusCode)
	}
	return ts
}

// BenchmarkServiceWarm is the serving-layer load generator: sequential
// warm-cache requests over real HTTP, reporting requests/s and p50/p99
// latency (scripts/bench_service.sh records them in BENCH_service.json).
func BenchmarkServiceWarm(b *testing.B) {
	for _, tc := range []struct {
		name, path string
	}{
		{"table2", "/v1/experiments/table2?pes=2"},
		{"fig2csv", "/v1/experiments/fig2?pes=1,2&format=csv"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ts := benchServer(b, tc.path)
			client := ts.Client()
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				resp, err := client.Get(ts.URL + tc.path)
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				lat = append(lat, time.Since(t0))
			}
			elapsed := time.Since(start)
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			pct := func(p float64) time.Duration {
				idx := int(p * float64(len(lat)-1))
				return lat[idx]
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
			b.ReportMetric(float64(pct(0.50).Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(pct(0.99).Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkServiceWarmParallel drives the warm cache with concurrent
// clients (the many-readers steady state); reports aggregate
// requests/s.
func BenchmarkServiceWarmParallel(b *testing.B) {
	ts := benchServer(b, "/v1/experiments/table2?pes=2")
	client := ts.Client()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Get(ts.URL + "/v1/experiments/table2?pes=2")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
}

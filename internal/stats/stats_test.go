package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-12 {
		t.Errorf("sd = %v, want 2", sd)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
}

func TestZScore(t *testing.T) {
	if z := ZScore(7, 5, 2); z != 1 {
		t.Errorf("z = %v", z)
	}
	if z := ZScore(3, 5, 2); z != -1 {
		t.Errorf("z = %v", z)
	}
	if z := ZScore(10, 5, 0); z != 0 {
		t.Errorf("z with zero sd = %v, want 0", z)
	}
}

func TestMeanShiftProperty(t *testing.T) {
	// Mean(xs + c) = Mean(xs) + c; StdDev invariant under shift.
	f := func(base []float64, c float64) bool {
		if len(base) == 0 || math.Abs(c) > 1e6 {
			return true
		}
		for _, x := range base {
			if math.Abs(x) > 1e6 || math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		shifted := make([]float64, len(base))
		for i, x := range base {
			shifted[i] = x + c
		}
		if math.Abs(Mean(shifted)-(Mean(base)+c)) > 1e-6 {
			return false
		}
		return math.Abs(StdDev(shifted)-StdDev(base)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345)
	out := tb.String()
	if !strings.Contains(out, "My Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12345") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		0.0626: "0.0626",
		1.55:   "1.55",
		123.45: "123.5",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// Package stats provides the small numeric and table-formatting helpers
// shared by the experiment drivers: mean/standard deviation/z-scores
// for the Table 3 fit study and aligned text tables for terminal
// reports.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// ZScore returns (x - mean) / sd, the paper's Table 3 fit metric
// (tr - Etr)/σtr. It returns 0 when sd is 0.
func ZScore(x, mean, sd float64) float64 {
	if sd == 0 {
		return 0
	}
	return (x - mean) / sd
}

// Table accumulates rows for an aligned text rendering.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly (4 significant-ish digits).
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func ref(pe int, op trace.Op, addr uint32, obj trace.ObjType) trace.Ref {
	return trace.Ref{Addr: addr, PE: uint8(pe), Op: op, Obj: obj}
}

func read(pe int, addr uint32) trace.Ref  { return ref(pe, trace.OpRead, addr, trace.ObjHeap) }
func write(pe int, addr uint32) trace.Ref { return ref(pe, trace.OpWrite, addr, trace.ObjHeap) }

func run(t *testing.T, cfg Config, refs []trace.Ref) *Sim {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	s := New(cfg)
	for _, r := range refs {
		s.Add(r)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: WriteThrough}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{PEs: 0, SizeWords: 64, LineWords: 4},
		{PEs: 1, SizeWords: 64, LineWords: 3},
		{PEs: 1, SizeWords: 2, LineWords: 4},
		{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: Copyback},
		{PEs: 1, SizeWords: 64, LineWords: 4, Protocol: Protocol(99)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPaperWriteAllocatePolicy(t *testing.T) {
	for _, p := range Protocols() {
		for _, size := range []int{64, 128, 256} {
			if PaperWriteAllocate(p, size) {
				t.Errorf("%v %d: small caches are no-write-allocate", p, size)
			}
		}
		if got, want := PaperWriteAllocate(p, 512), p != Hybrid; got != want {
			t.Errorf("%v 512: allocate = %v, want %v", p, got, want)
		}
		if !PaperWriteAllocate(p, 1024) {
			t.Errorf("%v 1024: want write-allocate", p)
		}
	}
}

func TestWriteThroughEveryWriteOnBus(t *testing.T) {
	// 10 writes to the same word: 10 bus words regardless of hits.
	refs := make([]trace.Ref, 10)
	for i := range refs {
		refs[i] = write(0, 0)
	}
	s := run(t, Config{PEs: 1, SizeWords: 64, LineWords: 4, Protocol: WriteThrough}, refs)
	if s.Stats().BusWords != 10 {
		t.Errorf("bus words = %d, want 10", s.Stats().BusWords)
	}
	if s.Stats().WriteThroughs != 10 {
		t.Errorf("write-throughs = %d, want 10", s.Stats().WriteThroughs)
	}
}

func TestWriteThroughReadMissFetchesLine(t *testing.T) {
	s := run(t, Config{PEs: 1, SizeWords: 64, LineWords: 4, Protocol: WriteThrough},
		[]trace.Ref{read(0, 0), read(0, 1), read(0, 2), read(0, 3)})
	st := s.Stats()
	if st.ReadMisses != 1 {
		t.Errorf("read misses = %d, want 1 (same line)", st.ReadMisses)
	}
	if st.BusWords != 4 {
		t.Errorf("bus words = %d, want 4 (one line fill)", st.BusWords)
	}
}

func TestWriteThroughInvalidatesRemoteCopies(t *testing.T) {
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: WriteThrough},
		[]trace.Ref{
			read(1, 0),  // PE1 caches the line
			write(0, 0), // PE0 write invalidates PE1's copy
			read(1, 0),  // PE1 must miss again
		})
	st := s.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.ReadMisses != 2 {
		t.Errorf("read misses = %d, want 2", st.ReadMisses)
	}
}

func TestCopybackRepeatedWritesStayLocal(t *testing.T) {
	// Write-allocate copyback: first write fetches the line, subsequent
	// writes are silent; eviction writes the dirty line back.
	refs := []trace.Ref{write(0, 0), write(0, 1), write(0, 2), write(0, 3)}
	s := run(t, Config{PEs: 1, SizeWords: 64, LineWords: 4, Protocol: Copyback, WriteAllocate: true}, refs)
	st := s.Stats()
	if st.BusWords != 4 {
		t.Errorf("bus words = %d, want 4 (one fill only)", st.BusWords)
	}
	if st.WriteBacks != 0 {
		t.Errorf("write-backs = %d, want 0 before eviction", st.WriteBacks)
	}
}

func TestCopybackEvictionWritesBack(t *testing.T) {
	// Cache of 2 lines (8 words, 4-word lines). Dirty line 0, then touch
	// lines 1 and 2 to evict it.
	refs := []trace.Ref{
		write(0, 0), // fill line 0 dirty (4 words)
		read(0, 4),  // fill line 1 (4 words)
		read(0, 8),  // fill line 2 (4), evicts line 0 -> writeback (4)
	}
	s := run(t, Config{PEs: 1, SizeWords: 8, LineWords: 4, Protocol: Copyback, WriteAllocate: true}, refs)
	st := s.Stats()
	if st.WriteBacks != 1 {
		t.Errorf("write-backs = %d, want 1", st.WriteBacks)
	}
	if st.BusWords != 16 {
		t.Errorf("bus words = %d, want 16", st.BusWords)
	}
}

func TestCopybackFlushWritesDirtyLines(t *testing.T) {
	s := run(t, Config{PEs: 1, SizeWords: 64, LineWords: 4, Protocol: Copyback, WriteAllocate: true},
		[]trace.Ref{write(0, 0), write(0, 8)})
	before := s.Stats().BusWords
	s.Flush()
	if got := s.Stats().BusWords - before; got != 8 {
		t.Errorf("flush moved %d words, want 8 (two dirty lines)", got)
	}
	s.Flush()
	if got := s.Stats().BusWords - before; got != 8 {
		t.Errorf("second flush moved more words (total %d)", got)
	}
}

func TestWriteInBroadcastPrivateWritesSilent(t *testing.T) {
	// Read-miss fill (Exclusive) then many writes: only the fill on bus.
	refs := []trace.Ref{read(0, 0)}
	for i := 0; i < 20; i++ {
		refs = append(refs, write(0, 0))
	}
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: WriteInBroadcast, WriteAllocate: true}, refs)
	if s.Stats().BusWords != 4 {
		t.Errorf("bus words = %d, want 4", s.Stats().BusWords)
	}
}

func TestWriteInBroadcastSharedWriteInvalidates(t *testing.T) {
	refs := []trace.Ref{
		read(0, 0),  // PE0 fills Exclusive (4 words)
		read(1, 0),  // PE1 fills; both Shared (4 words)
		write(0, 0), // PE0 invalidates PE1 (1 word), goes Modified
		write(0, 0), // silent
		read(1, 0),  // PE1 misses; PE0 supplies + writes back (4+4)
	}
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: WriteInBroadcast, WriteAllocate: true}, refs)
	st := s.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	want := int64(4 + 4 + 1 + 0 + 8)
	if st.BusWords != want {
		t.Errorf("bus words = %d, want %d", st.BusWords, want)
	}
}

func TestWriteThroughBroadcastUpdatesInsteadOfInvalidating(t *testing.T) {
	refs := []trace.Ref{
		read(0, 0),  // PE0 fill (4)
		read(1, 0),  // PE1 fill, both shared (4)
		write(0, 0), // update broadcast (1); PE1 keeps its copy
		read(1, 0),  // HIT for PE1
	}
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: WriteThroughBroadcast, WriteAllocate: true}, refs)
	st := s.Stats()
	if st.Updates != 1 {
		t.Errorf("updates = %d, want 1", st.Updates)
	}
	if st.ReadMisses != 2 {
		t.Errorf("read misses = %d, want 2 (PE1's second read hits)", st.ReadMisses)
	}
	if st.BusWords != 9 {
		t.Errorf("bus words = %d, want 9", st.BusWords)
	}
}

func TestWriteThroughBroadcastPromotesWhenLastCopy(t *testing.T) {
	// PE0 and PE1 share; PE1 evicts its copy by touching other lines;
	// then PE0's write finds no remote copy and promotes to private, so
	// a second write is silent.
	refs := []trace.Ref{
		read(0, 0),
		read(1, 0),
		read(1, 8), read(1, 16), // cache is 2 lines: line 0 evicted from PE1
		write(0, 0), // broadcast finds no copies -> promote, 1 word
		write(0, 0), // silent (Modified)
	}
	s := run(t, Config{PEs: 2, SizeWords: 8, LineWords: 4, Protocol: WriteThroughBroadcast, WriteAllocate: true}, refs)
	st := s.Stats()
	if st.BusWords != 4+4+4+4+1 {
		t.Errorf("bus words = %d, want 17", st.BusWords)
	}
}

func TestHybridLocalWritesCopyBack(t *testing.T) {
	// Local-tagged writes (trail) behave like copyback.
	refs := []trace.Ref{
		ref(0, trace.OpWrite, 0, trace.ObjTrail),
		ref(0, trace.OpWrite, 1, trace.ObjTrail),
		ref(0, trace.OpWrite, 2, trace.ObjTrail),
	}
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: Hybrid, WriteAllocate: true}, refs)
	if s.Stats().BusWords != 4 {
		t.Errorf("bus words = %d, want 4 (one fill)", s.Stats().BusWords)
	}
}

func TestHybridGlobalWritesWriteThrough(t *testing.T) {
	// Global-tagged writes (heap) always go to the bus.
	refs := []trace.Ref{
		ref(0, trace.OpWrite, 0, trace.ObjHeap),
		ref(0, trace.OpWrite, 0, trace.ObjHeap),
		ref(0, trace.OpWrite, 0, trace.ObjHeap),
	}
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: Hybrid, WriteAllocate: false}, refs)
	st := s.Stats()
	if st.WriteThroughs != 3 || st.BusWords != 3 {
		t.Errorf("write-throughs = %d bus = %d, want 3/3", st.WriteThroughs, st.BusWords)
	}
}

func TestHybridGlobalWriteInvalidatesRemote(t *testing.T) {
	refs := []trace.Ref{
		ref(1, trace.OpRead, 0, trace.ObjHeap),  // PE1 caches
		ref(0, trace.OpWrite, 0, trace.ObjHeap), // PE0 global write
		ref(1, trace.OpRead, 0, trace.ObjHeap),  // PE1 must miss
	}
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: Hybrid, WriteAllocate: false}, refs)
	st := s.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.ReadMisses != 2 {
		t.Errorf("read misses = %d, want 2", st.ReadMisses)
	}
}

func TestHybridGlobalWriteDoesNotDirtyLine(t *testing.T) {
	// A line filled by a global write-allocate stays clean: evicting it
	// must not cause a write-back.
	refs := []trace.Ref{
		ref(0, trace.OpWrite, 0, trace.ObjHeap), // fill + through
		ref(0, trace.OpRead, 8, trace.ObjHeap),  // fill line 1
		ref(0, trace.OpRead, 16, trace.ObjHeap), // fill line 2, evict line 0
	}
	s := run(t, Config{PEs: 1, SizeWords: 8, LineWords: 4, Protocol: Hybrid, WriteAllocate: true}, refs)
	if s.Stats().WriteBacks != 0 {
		t.Errorf("write-backs = %d, want 0", s.Stats().WriteBacks)
	}
}

func TestNoWriteAllocateBypassesCache(t *testing.T) {
	for _, p := range []Protocol{WriteThrough, WriteInBroadcast, WriteThroughBroadcast, Hybrid} {
		s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: p, WriteAllocate: false},
			[]trace.Ref{write(0, 0), read(0, 0)})
		if s.Stats().ReadMisses != 1 {
			t.Errorf("%v: read after NWA write should miss, misses = %d", p, s.Stats().ReadMisses)
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-line cache; access lines 0,1 then re-touch 0, then 2: victim is 1.
	refs := []trace.Ref{read(0, 0), read(0, 4), read(0, 0), read(0, 8), read(0, 0)}
	s := run(t, Config{PEs: 1, SizeWords: 8, LineWords: 4, Protocol: WriteThrough}, refs)
	// final read(0,0) should HIT if line 0 survived
	if s.Stats().ReadMisses != 3 {
		t.Errorf("read misses = %d, want 3 (0,4,8 miss; final 0 hits)", s.Stats().ReadMisses)
	}
}

func TestSingleCacheNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newAssocCache(16)
		for i := 0; i < 1000; i++ {
			line := int32(rng.Intn(64))
			switch rng.Intn(3) {
			case 0:
				if c.peek(line) < 0 {
					c.insert(line, stateShared)
				}
			case 1:
				c.access(line)
			case 2:
				c.invalidate(line)
			}
			if c.len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLRUMatchesReferenceModel(t *testing.T) {
	// Property: the intrusive-list cache behaves exactly like a naive
	// slice-based LRU model.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newAssocCache(8)
		var model []int32 // most recent first
		modelHas := func(line int32) int {
			for i, l := range model {
				if l == line {
					return i
				}
			}
			return -1
		}
		for i := 0; i < 500; i++ {
			line := int32(rng.Intn(24))
			if rng.Intn(4) == 0 { // invalidate
				got := c.invalidate(line)
				idx := modelHas(line)
				if got != (idx >= 0) {
					return false
				}
				if idx >= 0 {
					model = append(model[:idx], model[idx+1:]...)
				}
				continue
			}
			// access (insert or touch)
			if c.access(line) < 0 {
				c.insert(line, stateShared)
			}
			if idx := modelHas(line); idx >= 0 {
				model = append(model[:idx], model[idx+1:]...)
			} else if len(model) == 8 {
				evicted := model[len(model)-1]
				model = model[:len(model)-1]
				if c.peek(evicted) >= 0 {
					return false
				}
			}
			model = append([]int32{line}, model...)
			// every model line must be present
			for _, l := range model {
				if c.peek(l) < 0 {
					return false
				}
			}
			if c.len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTrafficRatioNeverNegativeProperty(t *testing.T) {
	// Property: on random traces, every protocol yields sane stats:
	// refs preserved, traffic ratio >= 0, miss counts <= refs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]trace.Ref, 2000)
		for i := range refs {
			obj := trace.ObjHeap
			if rng.Intn(2) == 0 {
				obj = trace.ObjTrail
			}
			refs[i] = trace.Ref{
				Addr: uint32(rng.Intn(512)),
				PE:   uint8(rng.Intn(4)),
				Op:   trace.Op(rng.Intn(2)),
				Obj:  obj,
			}
		}
		for _, p := range []Protocol{WriteThrough, WriteInBroadcast, WriteThroughBroadcast, Hybrid} {
			for _, wa := range []bool{false, true} {
				s := New(Config{PEs: 4, SizeWords: 64, LineWords: 4, Protocol: p, WriteAllocate: wa})
				for _, r := range refs {
					s.Add(r)
				}
				st := s.Stats()
				if st.Refs != int64(len(refs)) {
					return false
				}
				if st.TrafficRatio() < 0 || st.Misses() > st.Refs {
					return false
				}
				if st.Reads+st.Writes != st.Refs {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestWriteThroughTrafficDominatesBroadcast(t *testing.T) {
	// On a write-heavy single-PE trace with locality, conventional
	// write-through must generate at least as much traffic as the
	// write-in broadcast cache — the paper's Figure 4 ordering.
	rng := rand.New(rand.NewSource(7))
	refs := make([]trace.Ref, 20000)
	for i := range refs {
		refs[i] = trace.Ref{
			Addr: uint32(rng.Intn(256)),
			PE:   0,
			Op:   trace.Op(rng.Intn(2)),
			Obj:  trace.ObjHeap,
		}
	}
	var ratios [2]float64
	for i, p := range []Protocol{WriteThrough, WriteInBroadcast} {
		s := New(Config{PEs: 1, SizeWords: 512, LineWords: 4, Protocol: p, WriteAllocate: true})
		for _, r := range refs {
			s.Add(r)
		}
		ratios[i] = s.Stats().TrafficRatio()
	}
	if ratios[0] < ratios[1] {
		t.Errorf("write-through ratio %.3f < broadcast ratio %.3f", ratios[0], ratios[1])
	}
}

func TestPerPEAccounting(t *testing.T) {
	s := run(t, Config{PEs: 2, SizeWords: 64, LineWords: 4, Protocol: WriteThrough},
		[]trace.Ref{read(0, 0), write(1, 64)})
	if s.PerPERefs()[0] != 1 || s.PerPERefs()[1] != 1 {
		t.Errorf("per-PE refs = %v", s.PerPERefs())
	}
	if s.PerPEBusWords()[0] != 4 || s.PerPEBusWords()[1] != 1 {
		t.Errorf("per-PE bus = %v", s.PerPEBusWords())
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, p := range Protocols() {
		if p.String() == "" {
			t.Errorf("protocol %d has empty name", p)
		}
	}
}

// --- set-associative extension ---

func TestSetAssocValidation(t *testing.T) {
	good := Config{PEs: 1, SizeWords: 256, LineWords: 4, Protocol: WriteThrough, Assoc: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("4-way 64-line config rejected: %v", err)
	}
	bad := Config{PEs: 1, SizeWords: 256, LineWords: 4, Protocol: WriteThrough, Assoc: 7}
	if err := bad.Validate(); err == nil {
		t.Error("7-way of 64 lines accepted")
	}
}

func TestSetAssocBehavesLikeFullWhenOneSet(t *testing.T) {
	// ways == lines: one set covering the whole cache = fully assoc.
	rng := rand.New(rand.NewSource(3))
	refs := make([]trace.Ref, 5000)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint32(rng.Intn(600)), PE: 0, Op: trace.Op(rng.Intn(2)), Obj: trace.ObjHeap}
	}
	full := New(Config{PEs: 1, SizeWords: 128, LineWords: 4, Protocol: Copyback, WriteAllocate: true})
	ways := New(Config{PEs: 1, SizeWords: 128, LineWords: 4, Protocol: Copyback, WriteAllocate: true, Assoc: 32})
	for _, r := range refs {
		full.Add(r)
		ways.Add(r)
	}
	if full.Stats() != ways.Stats() {
		t.Errorf("single-set set-assoc differs from fully associative:\nfull %+v\nways %+v",
			full.Stats(), ways.Stats())
	}
}

func TestAssociativityMonotone(t *testing.T) {
	// More ways can only reduce (or keep) conflict misses on this
	// deliberately conflicting trace.
	var refs []trace.Ref
	for round := 0; round < 200; round++ {
		for k := 0; k < 6; k++ {
			// Addresses striding by the cache size: maximal conflict.
			refs = append(refs, trace.Ref{Addr: uint32(k * 256), PE: 0, Op: trace.OpRead, Obj: trace.ObjHeap})
		}
	}
	var prev int64 = 1 << 60
	for _, ways := range []int{1, 2, 4, 8} {
		s := New(Config{PEs: 1, SizeWords: 256, LineWords: 4, Protocol: Copyback, WriteAllocate: true, Assoc: ways})
		for _, r := range refs {
			s.Add(r)
		}
		m := s.Stats().Misses()
		if m > prev {
			t.Errorf("%d-way misses %d exceed %d-way's %d", ways, m, ways/2, prev)
		}
		prev = m
	}
}

func TestSetAssocFlush(t *testing.T) {
	s := New(Config{PEs: 1, SizeWords: 64, LineWords: 4, Protocol: Copyback, WriteAllocate: true, Assoc: 4})
	s.Add(write(0, 0))
	s.Add(write(0, 16))
	before := s.Stats().BusWords
	s.Flush()
	if got := s.Stats().BusWords - before; got != 8 {
		t.Errorf("flush moved %d words, want 8", got)
	}
}

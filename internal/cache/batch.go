package cache

import "repro/internal/trace"

// This file is the batch replay fast path. Sim implements
// trace.BatchSink; AddBatch dispatches once per batch to a
// protocol-specialized kernel, hoisting the coherency-scheme switch and
// the Sink interface hop out of the per-reference loop. For the fully
// associative model (the paper's, and the common case) the kernels are
// additionally specialized to the concrete flat store: the hash probe
// (lookupIdx) inlines straight into the loop and the LRU relink is a
// single predictable call taken only when the line is not already MRU.
// The set-associative variant runs the same kernels through the store
// interface. Reference/read/write totals are accumulated in locals and
// committed once per batch; everything else updates exactly as in
// single-reference delivery, so the statistics are bit-identical to
// feeding the same references through Add one at a time.
//
// When an OnBus observer is attached the batch falls back to the Add
// path: observers see the reference index as a proxy clock, so the
// bookkeeping must advance per reference exactly as in single-reference
// delivery.
//
// The kernels are deliberately repetitive: one loop per protocol (times
// two store layouts) keeps every per-reference branch monomorphic and
// lets the compiler specialize each loop body. Resist the urge to
// deduplicate them through function values — an indirect call per
// reference is exactly what this file exists to remove.

// AddBatch processes a batch of references (trace.BatchSink). The batch
// slice is treated as read-only, as the fan-out dispatcher requires.
func (s *Sim) AddBatch(refs []trace.Ref) {
	if s.OnBus != nil {
		for i := range refs {
			s.Add(refs[i])
		}
		return
	}
	if s.flat != nil {
		switch s.cfg.Protocol {
		case WriteThrough:
			s.replayWriteThroughFlat(refs)
		case WriteInBroadcast:
			s.replayWriteInBroadcastFlat(refs)
		case WriteThroughBroadcast:
			s.replayWriteUpdateFlat(refs)
		case Hybrid:
			s.replayHybridFlat(refs)
		case Copyback:
			s.replayCopybackFlat(refs)
		}
		return
	}
	switch s.cfg.Protocol {
	case WriteThrough:
		s.replayWriteThrough(refs)
	case WriteInBroadcast:
		s.replayWriteInBroadcast(refs)
	case WriteThroughBroadcast:
		s.replayWriteUpdate(refs)
	case Hybrid:
		s.replayHybrid(refs)
	case Copyback:
		s.replayCopyback(refs)
	}
}

// commitBus adds the loop-local per-PE bus-word counters (from the
// kernels' inlined bus writes) to the per-PE accounting.
func (s *Sim) commitBus(npes int, peBus *[maxDirPEs]int64) {
	for i := 0; i < npes; i++ {
		s.perPEBus[i] += peBus[i]
	}
}

// commitTotals adds the loop-local reference counters to the stats;
// reads are derived (every counted reference is a read or a write), so
// the kernels track two counters, not three.
func (s *Sim) commitTotals(npes int, refs, writes int64, peRefs *[maxDirPEs]int64) {
	s.stats.Refs += refs
	s.stats.Reads += refs - writes
	s.stats.Writes += writes
	for i := 0; i < npes; i++ {
		s.perPERefs[i] += peRefs[i]
	}
}

// --- fully associative (flat store) kernels ---

//rapwam:hotpath
func (s *Sim) replayWriteThroughFlat(refs []trace.Ref) {
	npes, shift, flat, dir := s.cfg.PEs, s.lineShift, s.flat, s.dir
	var peBus [maxDirPEs]int64
	wa := s.cfg.WriteAllocate
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		pe &= maxDirPEs - 1 // no-op (pe < PEs <= 64); elides bounds checks
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		c := flat[pe]
		h := c.lookupIdx(line)
		if h >= 0 && c.mru != h {
			c.relink(h)
		}
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			// Inlined writeThrough: one word on the bus per write (the
			// invalidation signal), optional allocate on a miss. OnBus
			// is nil on this path, so bus() is just the two counters.
			nWrites++
			if h < 0 {
				s.stats.WriteMisses++
			}
			s.stats.WriteThroughs++
			s.stats.BusWords++
			peBus[pe]++
			if dir != nil {
				if slot := dir.find(line); slot >= 0 {
					s.invalidateOthersAt(slot, pe, line)
				}
			}
			if h < 0 && wa {
				s.fill(pe, line, stateShared)
			}
		}
	}
	s.commitBus(npes, &peBus)
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

func (s *Sim) replayWriteInBroadcastFlat(refs []trace.Ref) {
	npes, shift, flat, dir := s.cfg.PEs, s.lineShift, s.flat, s.dir
	wa := s.cfg.WriteAllocate
	var peBus [maxDirPEs]int64
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		pe &= maxDirPEs - 1 // no-op (pe < PEs <= 64); elides bounds checks
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		c := flat[pe]
		h := c.lookupIdx(line)
		if h >= 0 && c.mru != h {
			c.relink(h)
		}
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if h >= 0 {
				// Private lines write silently (Modified) or promote in
				// place (Exclusive); a Shared hit spends one bus cycle
				// invalidating all remote copies (OnBus is nil here, so
				// bus() is just the two counters).
				st := c.slab[h].st
				if st == stateModified {
					continue
				}
				if st == stateExclusive {
					c.slab[h].st = stateModified
					continue
				}
				s.stats.BusWords++
				peBus[pe]++
				if dir != nil {
					if slot := dir.find(line); slot >= 0 {
						s.invalidateOthersAt(slot, pe, line)
					}
				}
				c.slab[h].st = stateModified
				continue
			}
			s.stats.WriteMisses++
			if !wa {
				// Inlined no-allocate write miss: the word goes to
				// memory and the bus write invalidates remote copies.
				s.stats.WriteThroughs++
				s.stats.BusWords++
				peBus[pe]++
				if dir != nil {
					if slot := dir.find(line); slot >= 0 {
						s.invalidateOthersAt(slot, pe, line)
					}
				}
				continue
			}
			s.writeInBroadcast(pe, line, h)
		}
	}
	s.commitBus(npes, &peBus)
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

func (s *Sim) replayWriteUpdateFlat(refs []trace.Ref) {
	npes, shift, flat := s.cfg.PEs, s.lineShift, s.flat
	var peBus [maxDirPEs]int64
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		pe &= maxDirPEs - 1 // no-op (pe < PEs <= 64); elides bounds checks
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		c := flat[pe]
		h := c.lookupIdx(line)
		if h >= 0 && c.mru != h {
			c.relink(h)
		}
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if h >= 0 {
				// Same private-line fast path as write-in broadcast; a
				// Shared hit broadcasts the word (one bus cycle) to the
				// remaining holders, or promotes to private if none are
				// left.
				st := c.slab[h].st
				if st == stateModified {
					continue
				}
				if st == stateExclusive {
					c.slab[h].st = stateModified
					continue
				}
				s.stats.Updates++
				s.stats.BusWords++
				peBus[pe]++
				if !s.updateOthers(pe, line) {
					c.slab[h].st = stateExclusive
				}
				continue
			}
			s.stats.WriteMisses++
			s.writeUpdate(pe, line, h)
		}
	}
	s.commitBus(npes, &peBus)
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

func (s *Sim) replayHybridFlat(refs []trace.Ref) {
	npes, shift, flat, dir := s.cfg.PEs, s.lineShift, s.flat, s.dir
	var peBus [maxDirPEs]int64
	wa := s.cfg.WriteAllocate
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		pe &= maxDirPEs - 1 // no-op (pe < PEs <= 64); elides bounds checks
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		c := flat[pe]
		h := c.lookupIdx(line)
		if h >= 0 && c.mru != h {
			c.relink(h)
		}
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if r.Obj.Global() {
				// Inlined global write-through: the bus word doubles as
				// the invalidation signal; a present line is never
				// dirtied by a global write. OnBus is nil on this path,
				// so bus() is just the two counters.
				if h < 0 {
					s.stats.WriteMisses++
				}
				s.stats.WriteThroughs++
				s.stats.BusWords++
				peBus[pe]++
				if dir != nil {
					if slot := dir.find(line); slot >= 0 {
						s.invalidateOthersAt(slot, pe, line)
					}
				}
				if h < 0 && wa {
					s.fill(pe, line, stateShared)
				}
				continue
			}
			if h >= 0 {
				// Local-data write hit: plain copyback, no coherency
				// actions and no bus traffic.
				c.slab[h].st = stateModified
				continue
			}
			// Local-data write miss: fetch the line dirty under
			// write-allocate, else write the word through.
			s.stats.WriteMisses++
			if wa {
				s.fill(pe, line, stateModified)
			} else {
				s.stats.WriteThroughs++
				s.stats.BusWords++
				peBus[pe]++
			}
		}
	}
	s.commitBus(npes, &peBus)
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

//rapwam:hotpath
func (s *Sim) replayCopybackFlat(refs []trace.Ref) {
	npes, shift, flat := s.cfg.PEs, s.lineShift, s.flat
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		pe &= maxDirPEs - 1 // no-op (pe < PEs <= 64); elides bounds checks
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		c := flat[pe]
		h := c.lookupIdx(line)
		if h >= 0 && c.mru != h {
			c.relink(h)
		}
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if h >= 0 {
				// Write hit: dirty the line silently.
				c.slab[h].st = stateModified
				continue
			}
			s.stats.WriteMisses++
			s.writeCopyback(pe, line, h)
		}
	}
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

// --- set-associative (store interface) kernels ---

func (s *Sim) replayWriteThrough(refs []trace.Ref) {
	npes, shift, dir := s.cfg.PEs, s.lineShift, s.dir
	wa := s.cfg.WriteAllocate
	var nRefs, nWrites int64
	var peRefs, peBus [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		h := s.caches[pe].access(line)
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			// Inlined writeThrough: one word on the bus per write (the
			// invalidation signal), optional allocate on a miss. OnBus
			// is nil on this path, so bus() is just the two counters.
			nWrites++
			if h < 0 {
				s.stats.WriteMisses++
			}
			s.stats.WriteThroughs++
			s.stats.BusWords++
			peBus[pe]++
			if dir != nil {
				if slot := dir.find(line); slot >= 0 {
					s.invalidateOthersAt(slot, pe, line)
				}
			}
			if h < 0 && wa {
				s.fill(pe, line, stateShared)
			}
		}
	}
	s.commitBus(npes, &peBus)
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

func (s *Sim) replayWriteInBroadcast(refs []trace.Ref) {
	npes, shift := s.cfg.PEs, s.lineShift
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		h := s.caches[pe].access(line)
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if h < 0 {
				s.stats.WriteMisses++
			}
			s.writeInBroadcast(pe, line, h)
		}
	}
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

func (s *Sim) replayWriteUpdate(refs []trace.Ref) {
	npes, shift := s.cfg.PEs, s.lineShift
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		h := s.caches[pe].access(line)
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if h < 0 {
				s.stats.WriteMisses++
			}
			s.writeUpdate(pe, line, h)
		}
	}
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

func (s *Sim) replayHybrid(refs []trace.Ref) {
	npes, shift := s.cfg.PEs, s.lineShift
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		h := s.caches[pe].access(line)
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if h < 0 {
				s.stats.WriteMisses++
			}
			s.writeHybrid(pe, line, h, r.Obj)
		}
	}
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

func (s *Sim) replayCopyback(refs []trace.Ref) {
	npes, shift := s.cfg.PEs, s.lineShift
	var nRefs, nWrites int64
	var peRefs [maxDirPEs]int64
	for i := range refs {
		r := refs[i]
		pe := int(r.PE)
		if pe >= npes {
			continue
		}
		line := int32(r.Addr >> shift)
		nRefs++
		peRefs[pe]++
		h := s.caches[pe].access(line)
		if r.Op == trace.OpRead {
			if h < 0 {
				s.readMiss(pe, line)
			}
		} else {
			nWrites++
			if h < 0 {
				s.stats.WriteMisses++
			}
			s.writeCopyback(pe, line, h)
		}
	}
	s.commitTotals(npes, nRefs, nWrites, &peRefs)
}

package cache

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// Determinism matrix for set-sharded replay: for every protocol, on
// real deriv and qsort engine traces, replay with shards ∈ {1, 2, 7,
// NumCPU} must produce Stats, per-PE bus words and per-PE reference
// vectors bit-identical to the sequential kernels — and, via the
// golden-parity suite's reference simulator, to the seed refsim.

// shardCounts is the required shard matrix. 7 deliberately does not
// divide the set counts evenly, exercising uneven shard ranges.
func shardCounts() []int {
	counts := []int{1, 2, 7}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// runSharded replays buf through a K-shard simulator via the batch
// path (the same delivery the fan-out and grid use).
func runSharded(buf *trace.Buffer, cfg Config, k int) (Stats, []int64, []int64) {
	s := NewSharded(cfg, k)
	s.AddBatchStable(buf.Refs)
	s.Close()
	return s.Stats(), s.PerPEBusWords(), s.PerPERefs()
}

// shardConfigs enumerates set-associative configurations (the ones
// that actually shard) plus the fully associative clamp case.
func shardConfigs(p Protocol, pes int) []Config {
	var cfgs []Config
	for _, wa := range []bool{false, true} {
		for _, assoc := range []int{0, 2, 4} {
			cfgs = append(cfgs, Config{
				PEs: pes, SizeWords: 256, LineWords: 4,
				Protocol: p, WriteAllocate: wa, Assoc: assoc,
			})
		}
	}
	return cfgs
}

func TestShardedReplayDeterminism(t *testing.T) {
	for _, benchName := range []string{"deriv", "qsort"} {
		for _, p := range Protocols() {
			pes, sequential := 4, false
			if p == Copyback {
				pes, sequential = 1, true
			}
			buf := parityTrace(t, benchName, pes, sequential)
			for _, cfg := range shardConfigs(p, pes) {
				cfg := cfg
				name := fmt.Sprintf("%s/%v/wa=%v/assoc=%d", benchName, p, cfg.WriteAllocate, cfg.Assoc)
				t.Run(name, func(t *testing.T) {
					// Sequential kernels (pinned to the seed refsim by
					// the golden-parity suite) are the ground truth.
					wantStats, wantBus, wantRefs, _ := runNew(buf, cfg, false)
					refStats, refBus, refRefs, _ := runRef(buf, cfg, false)
					if wantStats != refStats || !eqVec(wantBus, refBus) || !eqVec(wantRefs, refRefs) {
						t.Fatalf("sequential kernels disagree with refsim; parity suite should have caught this")
					}
					for _, k := range shardCounts() {
						gotStats, gotBus, gotRefs := runSharded(buf, cfg, k)
						if gotStats != wantStats {
							t.Errorf("shards=%d stats differ:\n got %+v\nwant %+v", k, gotStats, wantStats)
						}
						if !eqVec(gotBus, wantBus) {
							t.Errorf("shards=%d per-PE bus differ:\n got %v\nwant %v", k, gotBus, wantBus)
						}
						if !eqVec(gotRefs, wantRefs) {
							t.Errorf("shards=%d per-PE refs differ:\n got %v\nwant %v", k, gotRefs, wantRefs)
						}
					}
				})
			}
		}
	}
}

func TestEffectiveShards(t *testing.T) {
	fullAssoc := Config{PEs: 4, SizeWords: 256, LineWords: 4, Assoc: 0}
	setAssoc := Config{PEs: 4, SizeWords: 256, LineWords: 4, Assoc: 2} // 32 sets
	cases := []struct {
		cfg  Config
		k    int
		want int
	}{
		{fullAssoc, 1, 1},
		{fullAssoc, 8, 1},  // one global LRU pool: cannot shard
		{fullAssoc, 0, 1},  // k <= 0 treated as 1
		{setAssoc, -3, 1},  //
		{setAssoc, 1, 1},   //
		{setAssoc, 7, 7},   // uneven division is fine
		{setAssoc, 32, 32}, // one worker per set
		{setAssoc, 64, 32}, // clamped to set count
	}
	for _, c := range cases {
		if got := EffectiveShards(c.cfg, c.k); got != c.want {
			t.Errorf("EffectiveShards(assoc=%d, k=%d) = %d, want %d", c.cfg.Assoc, c.k, got, c.want)
		}
	}
}

// TestShardedWorkerRangesCoverAllSets checks the shard partition is a
// disjoint cover of [0, sets) for even and uneven worker counts.
func TestShardedWorkerRangesCoverAllSets(t *testing.T) {
	cfg := Config{PEs: 4, SizeWords: 256, LineWords: 4, Protocol: WriteThrough, Assoc: 2} // 32 sets
	for _, k := range []int{1, 2, 7, 31, 32} {
		s := NewSharded(cfg, k)
		next := int32(0)
		for i, w := range s.workers {
			if w.lo != next {
				t.Fatalf("k=%d worker %d: lo = %d, want %d", k, i, w.lo, next)
			}
			if w.hi < w.lo {
				t.Fatalf("k=%d worker %d: empty-inverted range [%d,%d)", k, i, w.lo, w.hi)
			}
			next = w.hi
		}
		if next != 32 {
			t.Fatalf("k=%d: ranges cover [0,%d), want [0,32)", k, next)
		}
		s.Close()
	}
}

// TestSimulateAllShardsMatchesSequential drives the public entry point
// over a mixed shardable/unshardable configuration list.
func TestSimulateAllShardsMatchesSequential(t *testing.T) {
	buf := parityTrace(t, "qsort", 4, false)
	var cfgs []Config
	for _, p := range []Protocol{WriteThrough, WriteInBroadcast, WriteThroughBroadcast, Hybrid} {
		for _, assoc := range []int{0, 2, 4} {
			cfgs = append(cfgs, Config{PEs: 4, SizeWords: 256, LineWords: 4, Protocol: p, WriteAllocate: true, Assoc: assoc})
		}
	}
	want, err := SimulateAll(buf, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range shardCounts() {
		got, err := SimulateAllShards(buf, cfgs, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			if got[i] != want[i] {
				t.Errorf("shards=%d cfg %d (%v assoc=%d): stats differ:\n got %+v\nwant %+v",
					k, i, cfgs[i].Protocol, cfgs[i].Assoc, got[i], want[i])
			}
		}
	}
}

// TestShardedSingleRefPath exercises the per-reference Sink path.
func TestShardedSingleRefPath(t *testing.T) {
	buf := parityTrace(t, "deriv", 4, false)
	cfg := Config{PEs: 4, SizeWords: 256, LineWords: 4, Protocol: Hybrid, WriteAllocate: true, Assoc: 4}
	wantStats, _, _, _ := runNew(buf, cfg, false)
	s := NewSharded(cfg, 3)
	for _, r := range buf.Refs {
		s.Add(r)
	}
	s.Close()
	if got := s.Stats(); got != wantStats {
		t.Errorf("single-ref path stats differ:\n got %+v\nwant %+v", got, wantStats)
	}
}

// TestShardedReadBeforeClosePanics pins the misuse guard.
func TestShardedReadBeforeClosePanics(t *testing.T) {
	cfg := Config{PEs: 2, SizeWords: 256, LineWords: 4, Protocol: WriteThrough, Assoc: 2}
	s := NewSharded(cfg, 2)
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Error("Stats before Close did not panic")
		}
	}()
	_ = s.Stats()
}

// BenchmarkShardedReplay measures single-configuration replay
// throughput versus shard count on a set-associative configuration
// (1024 words, 4-word lines, 2-way: 128 sets), the scaling row in
// BENCH_replay.json. shards=1 takes the plain sequential kernel path
// via SimulateAllShards, so the baseline includes no fan-out overhead.
func BenchmarkShardedReplay(b *testing.B) {
	buf := parityTrace(b, "qsort", 4, false)
	cfg := Config{PEs: 4, SizeWords: 1024, LineWords: 4, Protocol: Hybrid, WriteAllocate: true, Assoc: 2}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(buf.Refs)))
			for i := 0; i < b.N; i++ {
				if _, err := SimulateAllShards(buf, []Config{cfg}, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(buf.Refs))*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}

package cache

import "repro/internal/trace"

// This file retains the pre-optimization simulator — Go map + pointer
// LRU stores, O(PEs) snoop scans, one reference at a time — as the
// naive reference model for the golden-parity tests (parity_test.go).
// It is deliberately the seed implementation, only renamed: the flat
// kernel in cache.go/batch.go must reproduce its statistics bit for
// bit, including the per-PE vectors and the OnBus event sequence.

type refStore interface {
	lookup(line int32) *refEntry
	touch(e *refEntry)
	insert(line int32, st state) (victim *refEntry)
	invalidate(line int32) bool
	forEach(f func(*refEntry))
}

type refEntry struct {
	line       int32
	st         state
	prev, next *refEntry
}

// refAssocCache is the seed's fully associative store: a hash map from
// line to entry plus an intrusive doubly-linked LRU list.
type refAssocCache struct {
	capacity int
	entries  map[int32]*refEntry
	lru      refEntry
	free     []*refEntry
}

func newRefAssocCache(lines int) *refAssocCache {
	c := &refAssocCache{
		capacity: lines,
		entries:  make(map[int32]*refEntry, lines),
	}
	c.lru.next = &c.lru
	c.lru.prev = &c.lru
	pool := make([]refEntry, lines)
	c.free = make([]*refEntry, lines)
	for i := range pool {
		c.free[i] = &pool[i]
	}
	return c
}

func (c *refAssocCache) lookup(line int32) *refEntry { return c.entries[line] }

func (c *refAssocCache) touch(e *refEntry) {
	c.unlink(e)
	c.pushFront(e)
}

func (c *refAssocCache) unlink(e *refEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *refAssocCache) pushFront(e *refEntry) {
	e.next = c.lru.next
	e.prev = &c.lru
	c.lru.next.prev = e
	c.lru.next = e
}

func (c *refAssocCache) insert(line int32, st state) *refEntry {
	if e := c.entries[line]; e != nil {
		e.st = st
		c.touch(e)
		return nil
	}
	var victim *refEntry
	var e *refEntry
	if len(c.free) > 0 {
		e = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		v := c.lru.prev
		c.unlink(v)
		delete(c.entries, v.line)
		victimCopy := *v
		victim = &victimCopy
		e = v
	}
	e.line = line
	e.st = st
	c.entries[line] = e
	c.pushFront(e)
	return victim
}

func (c *refAssocCache) invalidate(line int32) bool {
	e := c.entries[line]
	if e == nil {
		return false
	}
	c.unlink(e)
	delete(c.entries, line)
	c.free = append(c.free, e)
	return true
}

func (c *refAssocCache) forEach(f func(*refEntry)) {
	for e := c.lru.next; e != &c.lru; e = e.next {
		f(e)
	}
}

// refSetAssocCache is the seed's N-way store: per-set slices of entry
// pointers, most-recent first, rebuilt with append on every insert.
type refSetAssocCache struct {
	ways int
	sets [][]*refEntry
	mask int32
}

func newRefSetAssocCache(lines, ways int) *refSetAssocCache {
	numSets := lines / ways
	if numSets < 1 {
		numSets = 1
		ways = lines
	}
	return &refSetAssocCache{
		ways: ways,
		sets: make([][]*refEntry, numSets),
		mask: int32(numSets - 1),
	}
}

func (c *refSetAssocCache) set(line int32) int { return int(line & c.mask) }

func (c *refSetAssocCache) lookup(line int32) *refEntry {
	for _, e := range c.sets[c.set(line)] {
		if e.line == line {
			return e
		}
	}
	return nil
}

func (c *refSetAssocCache) touch(e *refEntry) {
	s := c.sets[c.set(e.line)]
	for i, x := range s {
		if x == e {
			copy(s[1:i+1], s[:i])
			s[0] = e
			return
		}
	}
}

func (c *refSetAssocCache) insert(line int32, st state) *refEntry {
	if e := c.lookup(line); e != nil {
		e.st = st
		c.touch(e)
		return nil
	}
	idx := c.set(line)
	s := c.sets[idx]
	var victim *refEntry
	if len(s) >= c.ways {
		v := s[len(s)-1]
		victimCopy := *v
		victim = &victimCopy
		s = s[:len(s)-1]
	}
	e := &refEntry{line: line, st: st}
	c.sets[idx] = append([]*refEntry{e}, s...)
	return victim
}

func (c *refSetAssocCache) invalidate(line int32) bool {
	idx := c.set(line)
	s := c.sets[idx]
	for i, e := range s {
		if e.line == line {
			c.sets[idx] = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

func (c *refSetAssocCache) forEach(f func(*refEntry)) {
	for _, s := range c.sets {
		for _, e := range s {
			f(e)
		}
	}
}

// refSim is the seed simulator: same protocols, same statistics, no
// snoop directory (every coherency action scans all PEs) and no batch
// path.
type refSim struct {
	cfg       Config
	caches    []refStore
	stats     Stats
	lineShift uint
	perPEBus  []int64
	perPERefs []int64
	OnBus     func(pe, words int, refIndex int64)
}

func newRefSim(cfg Config) *refSim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineWords {
		shift++
	}
	s := &refSim{
		cfg:       cfg,
		caches:    make([]refStore, cfg.PEs),
		lineShift: shift,
		perPEBus:  make([]int64, cfg.PEs),
		perPERefs: make([]int64, cfg.PEs),
	}
	lines := cfg.SizeWords / cfg.LineWords
	for i := range s.caches {
		if cfg.Assoc > 0 {
			s.caches[i] = newRefSetAssocCache(lines, cfg.Assoc)
		} else {
			s.caches[i] = newRefAssocCache(lines)
		}
	}
	return s
}

func (s *refSim) bus(pe int, words int64) {
	s.stats.BusWords += words
	s.perPEBus[pe] += words
	if s.OnBus != nil {
		s.OnBus(pe, int(words), s.stats.Refs)
	}
}

func (s *refSim) othersHolding(pe int, line int32) (held bool, dirtyPE int) {
	dirtyPE = -1
	for i, c := range s.caches {
		if i == pe {
			continue
		}
		if e := c.lookup(line); e != nil {
			held = true
			if e.st == stateModified {
				dirtyPE = i
			}
		}
	}
	return held, dirtyPE
}

func (s *refSim) invalidateOthers(pe int, line int32) {
	for i, c := range s.caches {
		if i == pe {
			continue
		}
		if c.invalidate(line) {
			s.stats.Invalidations++
		}
	}
}

func (s *refSim) updateOthers(pe int, line int32) bool {
	any := false
	for i, c := range s.caches {
		if i == pe {
			continue
		}
		if e := c.lookup(line); e != nil {
			any = true
			e.st = stateShared
		}
	}
	return any
}

func (s *refSim) fill(pe int, line int32, st state) *refEntry {
	s.stats.LineFills++
	s.bus(pe, int64(s.cfg.LineWords))
	victim := s.caches[pe].insert(line, st)
	if victim != nil && victim.st == stateModified {
		s.stats.WriteBacks++
		s.bus(pe, int64(s.cfg.LineWords))
	}
	return s.caches[pe].lookup(line)
}

func (s *refSim) fetchCoherent(pe int, line int32) state {
	held, dirtyPE := s.othersHolding(pe, line)
	if dirtyPE >= 0 {
		s.stats.WriteBacks++
		s.bus(dirtyPE, int64(s.cfg.LineWords))
	}
	if held {
		for i, c := range s.caches {
			if i == pe {
				continue
			}
			if e := c.lookup(line); e != nil {
				e.st = stateShared
			}
		}
		return stateShared
	}
	return stateExclusive
}

func (s *refSim) Add(r trace.Ref) {
	pe := int(r.PE)
	if pe >= s.cfg.PEs {
		return
	}
	line := int32(r.Addr >> s.lineShift)
	s.stats.Refs++
	s.perPERefs[pe]++
	if r.Op == trace.OpRead {
		s.stats.Reads++
		s.read(pe, line)
	} else {
		s.stats.Writes++
		s.write(pe, line, r.Obj)
	}
}

func (s *refSim) read(pe int, line int32) {
	c := s.caches[pe]
	if e := c.lookup(line); e != nil {
		c.touch(e)
		return
	}
	s.stats.ReadMisses++
	switch s.cfg.Protocol {
	case WriteThrough:
		s.fill(pe, line, stateShared)
	case Copyback:
		s.fill(pe, line, stateExclusive)
	case WriteInBroadcast, WriteThroughBroadcast:
		st := s.fetchCoherent(pe, line)
		s.fill(pe, line, st)
	case Hybrid:
		held, _ := s.othersHolding(pe, line)
		st := stateExclusive
		if held {
			st = stateShared
		}
		s.fill(pe, line, st)
	}
}

func (s *refSim) write(pe int, line int32, obj trace.ObjType) {
	c := s.caches[pe]
	e := c.lookup(line)
	if e == nil {
		s.stats.WriteMisses++
	} else {
		c.touch(e)
	}
	switch s.cfg.Protocol {
	case WriteThrough:
		s.stats.WriteThroughs++
		s.bus(pe, 1)
		s.invalidateOthers(pe, line)
		if e == nil && s.cfg.WriteAllocate {
			s.fill(pe, line, stateShared)
		}

	case Copyback:
		if e != nil {
			e.st = stateModified
			return
		}
		if s.cfg.WriteAllocate {
			s.fill(pe, line, stateModified)
		} else {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
		}

	case WriteInBroadcast:
		if e != nil {
			switch e.st {
			case stateModified:
			case stateExclusive:
				e.st = stateModified
			case stateShared:
				s.bus(pe, 1)
				s.invalidateOthers(pe, line)
				e.st = stateModified
			}
			return
		}
		if s.cfg.WriteAllocate {
			s.fetchCoherent(pe, line)
			s.invalidateOthers(pe, line)
			s.fill(pe, line, stateModified)
		} else {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
			s.invalidateOthers(pe, line)
		}

	case WriteThroughBroadcast:
		if e != nil {
			switch e.st {
			case stateModified:
			case stateExclusive:
				e.st = stateModified
			case stateShared:
				s.stats.Updates++
				s.bus(pe, 1)
				if !s.updateOthers(pe, line) {
					e.st = stateExclusive
				}
			}
			return
		}
		if s.cfg.WriteAllocate {
			st := s.fetchCoherent(pe, line)
			ne := s.fill(pe, line, st)
			if st == stateShared {
				s.stats.Updates++
				s.bus(pe, 1)
				s.updateOthers(pe, line)
			} else if ne != nil {
				ne.st = stateModified
			}
		} else {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
			s.updateOthers(pe, line)
		}

	case Hybrid:
		if obj.Global() {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
			s.invalidateOthers(pe, line)
			if e == nil && s.cfg.WriteAllocate {
				s.fill(pe, line, stateShared)
			}
			return
		}
		if e != nil {
			e.st = stateModified
			return
		}
		if s.cfg.WriteAllocate {
			s.fill(pe, line, stateModified)
		} else {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
		}
	}
}

func (s *refSim) Flush() {
	for pe, c := range s.caches {
		c.forEach(func(e *refEntry) {
			if e.st == stateModified {
				s.stats.WriteBacks++
				s.bus(pe, int64(s.cfg.LineWords))
				e.st = stateShared
			}
		})
	}
}

package cache

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
)

// Golden-parity tests: the flat kernel (slab/open-addressing stores,
// snoop directory, protocol-specialized batch replay) must produce
// statistics bit-identical to the retained naive reference simulator
// (refsim_test.go) for every protocol × allocation policy ×
// associativity on real engine traces — including the per-PE bus and
// reference vectors and, on the observed path, the exact OnBus event
// sequence.

// parityTrace memoizes one engine trace per (bench, pes, sequential).
var parityTraces = map[string]*trace.Buffer{}

func parityTrace(t testing.TB, name string, pes int, sequential bool) *trace.Buffer {
	t.Helper()
	key := fmt.Sprintf("%s/%d/%v", name, pes, sequential)
	if buf, ok := parityTraces[key]; ok {
		return buf
	}
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	buf, _, err := bench.Trace(context.Background(), b, pes, sequential)
	if err != nil {
		t.Fatalf("tracing %s: %v", name, err)
	}
	parityTraces[key] = buf
	return buf
}

// busEvent records one OnBus observation.
type busEvent struct {
	pe, words int
	refIndex  int64
}

// runRef replays buf through the reference simulator, recording OnBus
// events when record is set.
func runRef(buf *trace.Buffer, cfg Config, record bool) (Stats, []int64, []int64, []busEvent) {
	s := newRefSim(cfg)
	var events []busEvent
	if record {
		s.OnBus = func(pe, words int, refIndex int64) {
			events = append(events, busEvent{pe, words, refIndex})
		}
	}
	for _, r := range buf.Refs {
		s.Add(r)
	}
	return s.stats, s.perPEBus, s.perPERefs, events
}

// runNew replays buf through the production simulator. With record set
// it attaches an OnBus observer (exercising the per-reference path);
// without, it uses batch delivery (the protocol-specialized kernels).
func runNew(buf *trace.Buffer, cfg Config, record bool) (Stats, []int64, []int64, []busEvent) {
	s := New(cfg)
	var events []busEvent
	if record {
		s.OnBus = func(pe, words int, refIndex int64) {
			events = append(events, busEvent{pe, words, refIndex})
		}
	}
	s.AddBatch(buf.Refs)
	return s.Stats(), s.PerPEBusWords(), s.PerPERefs(), events
}

func eqVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parityConfigs enumerates the full grid for one protocol.
func parityConfigs(p Protocol, pes int) []Config {
	var cfgs []Config
	for _, wa := range []bool{false, true} {
		for _, assoc := range []int{0, 2, 4} {
			cfgs = append(cfgs, Config{
				PEs: pes, SizeWords: 256, LineWords: 4,
				Protocol: p, WriteAllocate: wa, Assoc: assoc,
			})
		}
	}
	return cfgs
}

func TestGoldenParityAgainstReferenceSim(t *testing.T) {
	for _, benchName := range []string{"deriv", "qsort"} {
		for _, p := range Protocols() {
			pes, sequential := 4, false
			if p == Copyback {
				pes, sequential = 1, true
			}
			buf := parityTrace(t, benchName, pes, sequential)
			for _, cfg := range parityConfigs(p, pes) {
				cfg := cfg
				name := fmt.Sprintf("%s/%v/wa=%v/assoc=%d", benchName, p, cfg.WriteAllocate, cfg.Assoc)
				t.Run(name, func(t *testing.T) {
					wantStats, wantBus, wantRefs, wantEvents := runRef(buf, cfg, true)

					// Batch path (protocol-specialized kernels).
					gotStats, gotBus, gotRefs, _ := runNew(buf, cfg, false)
					if gotStats != wantStats {
						t.Errorf("batch stats differ:\n got %+v\nwant %+v", gotStats, wantStats)
					}
					if !eqVec(gotBus, wantBus) {
						t.Errorf("batch per-PE bus differ:\n got %v\nwant %v", gotBus, wantBus)
					}
					if !eqVec(gotRefs, wantRefs) {
						t.Errorf("batch per-PE refs differ:\n got %v\nwant %v", gotRefs, wantRefs)
					}

					// Observed path (per-reference delivery, OnBus set):
					// the full bus-event sequence must match.
					gotStats2, _, _, gotEvents := runNew(buf, cfg, true)
					if gotStats2 != wantStats {
						t.Errorf("observed-path stats differ:\n got %+v\nwant %+v", gotStats2, wantStats)
					}
					if len(gotEvents) != len(wantEvents) {
						t.Fatalf("OnBus events: got %d, want %d", len(gotEvents), len(wantEvents))
					}
					for i := range gotEvents {
						if gotEvents[i] != wantEvents[i] {
							t.Fatalf("OnBus event %d: got %+v, want %+v", i, gotEvents[i], wantEvents[i])
						}
					}
				})
			}
		}
	}
}

// TestParityAfterFlush extends parity through the optional end-of-run
// flush accounting.
func TestParityAfterFlush(t *testing.T) {
	buf := parityTrace(t, "qsort", 4, false)
	for _, p := range []Protocol{WriteInBroadcast, WriteThroughBroadcast, Hybrid} {
		for _, assoc := range []int{0, 4} {
			cfg := Config{PEs: 4, SizeWords: 256, LineWords: 4, Protocol: p, WriteAllocate: true, Assoc: assoc}
			ref := newRefSim(cfg)
			for _, r := range buf.Refs {
				ref.Add(r)
			}
			ref.Flush()
			sim := New(cfg)
			sim.AddBatch(buf.Refs)
			sim.Flush()
			if sim.Stats() != ref.stats {
				t.Errorf("%v assoc=%d: post-flush stats differ:\n got %+v\nwant %+v",
					p, assoc, sim.Stats(), ref.stats)
			}
		}
	}
}

// TestDirectoryStaysInSync cross-checks the snoop directory against the
// per-PE stores after a full replay: every directory entry must match
// residency exactly.
func TestDirectoryStaysInSync(t *testing.T) {
	buf := parityTrace(t, "qsort", 4, false)
	for _, p := range []Protocol{WriteThrough, WriteInBroadcast, WriteThroughBroadcast, Hybrid} {
		cfg := Config{PEs: 4, SizeWords: 256, LineWords: 4, Protocol: p, WriteAllocate: true}
		sim := New(cfg)
		sim.AddBatch(buf.Refs)
		resident := 0
		for pe, c := range sim.caches {
			c.forEach(func(h int32) {
				resident++
				line := sim.flat[pe].slab[h].line
				if sim.dir.holders(line)&(1<<uint(pe)) == 0 {
					t.Fatalf("%v: pe %d holds line %d but directory does not know", p, pe, line)
				}
			})
		}
		// Every directory bit must be backed by a resident line: the
		// total popcount equals the resident-line count.
		bits := 0
		for _, s := range sim.dir.table {
			for m := s.mask; m != 0; m &= m - 1 {
				bits++
			}
		}
		if bits != resident {
			t.Errorf("%v: directory tracks %d holder bits, caches hold %d lines", p, bits, resident)
		}
	}
}

// TestSteadyStateReplayAllocsZero is the allocation regression test the
// kernel exists for: once a simulator is warm, replaying traces through
// it must not allocate at all, on either the batch or the per-reference
// path, for any protocol.
func TestSteadyStateReplayAllocsZero(t *testing.T) {
	buf := parityTrace(t, "qsort", 4, false)
	seqBuf := parityTrace(t, "qsort", 1, true)
	for _, p := range Protocols() {
		refs := buf.Refs
		pes := 4
		if p == Copyback {
			refs = seqBuf.Refs
			pes = 1
		}
		for _, assoc := range []int{0, 4} {
			cfg := Config{PEs: pes, SizeWords: 256, LineWords: 4, Protocol: p, WriteAllocate: true, Assoc: assoc}
			sim := New(cfg)
			sim.AddBatch(refs) // warm: caches and directory reach steady state
			if n := testing.AllocsPerRun(3, func() { sim.AddBatch(refs) }); n != 0 {
				t.Errorf("%v assoc=%d: batch replay allocates %.0f times per run, want 0", p, assoc, n)
			}
			if n := testing.AllocsPerRun(3, func() {
				for _, r := range refs[:4096] {
					sim.Add(r)
				}
			}); n != 0 {
				t.Errorf("%v assoc=%d: per-reference replay allocates %.0f times per run, want 0", p, assoc, n)
			}
		}
	}
}

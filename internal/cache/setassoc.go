package cache

// setAssocCache is an N-way set-associative cache with per-set LRU —
// the hardware-realizable variant used by the associativity ablation.
//
// Each set is a fixed ways-wide window of two flat parallel arrays
// (line numbers and states) ordered most-recently-used first; a hit or
// insert rotates the window in place with copy, so steady-state
// operation never allocates. A handle is the flat slot index
// set*ways+way; access returns the post-rotation handle.
type setAssocCache struct {
	ways  int
	lines []int32 // numSets * ways, MRU-first within each set
	sts   []state
	cnt   []int32 // resident lines per set
	mask  int32   // numSets - 1
	n     int
}

func newSetAssocCache(lines, ways int) *setAssocCache {
	numSets := lines / ways
	if numSets < 1 {
		numSets = 1
		ways = lines
	}
	return &setAssocCache{
		ways:  ways,
		lines: make([]int32, numSets*ways),
		sts:   make([]state, numSets*ways),
		cnt:   make([]int32, numSets),
		mask:  int32(numSets - 1),
	}
}

func (c *setAssocCache) set(line int32) int { return int(line & c.mask) }

func (c *setAssocCache) find(line int32) int32 {
	s := c.set(line)
	base := s * c.ways
	for i := base; i < base+int(c.cnt[s]); i++ {
		if c.lines[i] == line {
			return int32(i)
		}
	}
	return -1
}

func (c *setAssocCache) access(line int32) int32 {
	h := c.find(line)
	if h >= 0 {
		return c.promote(h)
	}
	return -1
}

func (c *setAssocCache) peek(line int32) int32 { return c.find(line) }

func (c *setAssocCache) state(h int32) state        { return c.sts[h] }
func (c *setAssocCache) setState(h int32, st state) { c.sts[h] = st }

// promote rotates the entry at h to the MRU position of its set,
// returning its new handle.
func (c *setAssocCache) promote(h int32) int32 {
	base := int32(int(h) / c.ways * c.ways)
	if h == base {
		return h
	}
	line, st := c.lines[h], c.sts[h]
	copy(c.lines[base+1:h+1], c.lines[base:h])
	copy(c.sts[base+1:h+1], c.sts[base:h])
	c.lines[base], c.sts[base] = line, st
	return base
}

// insert adds line (which must not be resident) with the given state.
func (c *setAssocCache) insert(line int32, st state) (h, victimLine int32, victimSt state, evicted bool) {
	s := c.set(line)
	base := s * c.ways
	n := int(c.cnt[s])
	if n == c.ways {
		victimLine, victimSt, evicted = c.lines[base+n-1], c.sts[base+n-1], true
		n--
	} else {
		c.cnt[s]++
		c.n++
	}
	copy(c.lines[base+1:base+n+1], c.lines[base:base+n])
	copy(c.sts[base+1:base+n+1], c.sts[base:base+n])
	c.lines[base], c.sts[base] = line, st
	return int32(base), victimLine, victimSt, evicted
}

func (c *setAssocCache) invalidate(line int32) bool {
	h := c.find(line)
	if h < 0 {
		return false
	}
	s := c.set(line)
	base := s * c.ways
	end := base + int(c.cnt[s])
	copy(c.lines[h:end-1], c.lines[h+1:end])
	copy(c.sts[h:end-1], c.sts[h+1:end])
	c.cnt[s]--
	c.n--
	return true
}

func (c *setAssocCache) len() int { return c.n }

func (c *setAssocCache) forEach(f func(h int32)) {
	for s := range c.cnt {
		base := s * c.ways
		for i := base; i < base+int(c.cnt[s]); i++ {
			f(int32(i))
		}
	}
}

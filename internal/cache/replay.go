package cache

import "repro/internal/trace"

// SimulateAll replays one buffered trace through every configuration in
// a single concurrent pass: one simulator per configuration, each fed
// the full trace in order on its own goroutine by the fan-out
// dispatcher, through the batch kernels (batch.go). Because each
// simulator still sees the references in emission order, the returned
// statistics are identical to running the configurations one by one
// with Buffer.Replay — SimulateAll only changes the wall-clock cost,
// from one trace walk per configuration to one walk total.
//
// All configurations are validated up front; on error nothing is
// simulated.
func SimulateAll(buf *trace.Buffer, cfgs []Config) ([]Stats, error) {
	return SimulateAllShards(buf, cfgs, 1)
}

// SimulateAllShards is SimulateAll with intra-configuration
// parallelism: each configuration that can be set-sharded (see
// EffectiveShards) is replayed by up to shards workers partitioned by
// cache set, with statistics merged by the deterministic reduction in
// Sharded.Close — bit-identical to shards = 1. Configurations that
// cannot shard (fully associative, or fewer sets than workers) fall
// back to a sequential simulator automatically.
func SimulateAllShards(buf *trace.Buffer, cfgs []Config, shards int) ([]Stats, error) {
	return SimulateAllStreamShards(cfgs, shards, func(sinks []trace.Sink) error {
		buf.ReplayAll(sinks...)
		return nil
	})
}

// SimulateAllStream is SimulateAll over any reference source: it
// validates every configuration, builds one simulator per
// configuration, hands their sinks to replay — which must deliver the
// full stream to each sink in emission order (e.g. via trace.FanOut or
// a store's chunked decode) — and collects per-configuration
// statistics. The experiments grid uses it to stream traces from disk
// without materializing them.
func SimulateAllStream(cfgs []Config, replay func(sinks []trace.Sink) error) ([]Stats, error) {
	return SimulateAllStreamShards(cfgs, 1, replay)
}

// SimulateAllStreamShards is SimulateAllStream with set-sharded
// intra-configuration parallelism (see SimulateAllShards). Shardable
// configurations get a Sharded sink, sequential ones a plain Sim; the
// replay callback drives them identically (both implement the batch
// sink interfaces), and the sharded sinks are drained and merged after
// replay returns — also on replay error, so no worker goroutine leaks.
func SimulateAllStreamShards(cfgs []Config, shards int, replay func(sinks []trace.Sink) error) ([]Stats, error) {
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	sims := make([]*Sim, len(cfgs))
	sharded := make([]*Sharded, len(cfgs))
	sinks := make([]trace.Sink, len(cfgs))
	for i, cfg := range cfgs {
		if EffectiveShards(cfg, shards) > 1 {
			sharded[i] = NewSharded(cfg, shards)
			sinks[i] = sharded[i]
		} else {
			sims[i] = New(cfg)
			sinks[i] = sims[i]
		}
	}
	err := replay(sinks)
	for _, sh := range sharded {
		if sh != nil {
			sh.Close()
		}
	}
	if err != nil {
		return nil, err
	}
	out := make([]Stats, len(cfgs))
	for i := range cfgs {
		if sharded[i] != nil {
			out[i] = sharded[i].Stats()
		} else {
			out[i] = sims[i].Stats()
		}
	}
	return out, nil
}

package cache

import "repro/internal/trace"

// SimulateAll replays one buffered trace through every configuration in
// a single concurrent pass: one simulator per configuration, each fed
// the full trace in order on its own goroutine by the fan-out
// dispatcher, through the batch kernels (batch.go). Because each
// simulator still sees the references in emission order, the returned
// statistics are identical to running the configurations one by one
// with Buffer.Replay — SimulateAll only changes the wall-clock cost,
// from one trace walk per configuration to one walk total.
//
// All configurations are validated up front; on error nothing is
// simulated.
func SimulateAll(buf *trace.Buffer, cfgs []Config) ([]Stats, error) {
	return SimulateAllStream(cfgs, func(sinks []trace.Sink) error {
		buf.ReplayAll(sinks...)
		return nil
	})
}

// SimulateAllStream is SimulateAll over any reference source: it
// validates every configuration, builds one simulator per
// configuration, hands their sinks to replay — which must deliver the
// full stream to each sink in emission order (e.g. via trace.FanOut or
// a store's chunked decode) — and collects per-configuration
// statistics. The experiments grid uses it to stream traces from disk
// without materializing them.
func SimulateAllStream(cfgs []Config, replay func(sinks []trace.Sink) error) ([]Stats, error) {
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	sims := make([]*Sim, len(cfgs))
	sinks := make([]trace.Sink, len(cfgs))
	for i, cfg := range cfgs {
		sims[i] = New(cfg)
		sinks[i] = sims[i]
	}
	if err := replay(sinks); err != nil {
		return nil, err
	}
	out := make([]Stats, len(cfgs))
	for i, sim := range sims {
		out[i] = sim.Stats()
	}
	return out, nil
}

package cache

// store is the per-PE line container: fully associative (the paper's
// model) or set-associative (the hardware-realism extension).
//
// The interface is allocation-free by construction: resident lines are
// addressed by int32 handles into preallocated flat storage rather than
// by pointers, and eviction victims are returned by value. A handle is
// valid until the next insert or invalidate on the same store; access
// may relocate an entry and therefore returns the (possibly new)
// handle.
type store interface {
	// access looks the line up and, on a hit, promotes it to
	// most-recently-used, returning its handle; it returns -1 on a miss.
	access(line int32) int32
	// peek looks the line up without disturbing LRU order (a remote
	// snoop), returning its handle or -1.
	peek(line int32) int32
	// state returns the coherency state of a resident entry.
	state(h int32) state
	// setState updates the coherency state of a resident entry.
	setState(h int32, st state)
	// insert adds the line in the given state, evicting the LRU entry
	// of its (set-)associativity class if full. The line must not be
	// resident (the simulator inserts only after a confirmed miss, so
	// insert never re-probes). The victim's identity and pre-eviction
	// state are returned by value — no pointer into the store escapes,
	// so nothing is forced onto the heap.
	insert(line int32, st state) (h, victimLine int32, victimSt state, evicted bool)
	// invalidate removes the line if present, reporting whether it was
	// held.
	invalidate(line int32) bool
	// len returns the number of resident lines.
	len() int
	// forEach visits every resident entry by handle. The callback may
	// change entry states but must not insert or invalidate.
	forEach(f func(h int32))
}

// hashLine is the multiplicative (Fibonacci) hash shared by the flat
// stores and the snoop directory; the golden-ratio constant spreads the
// low-entropy high bits of line numbers across the power-of-two tables.
func hashLine(line int32) uint32 {
	return uint32(line) * 0x9E3779B1
}

// tableSizeFor returns the open-addressing table size for n resident
// entries: the next power of two at or above 2n, so the load factor
// stays <= 0.5 and linear probe chains stay short.
func tableSizeFor(n int) uint32 {
	size := uint32(8)
	for size < 2*uint32(n) {
		size *= 2
	}
	return size
}

package cache

// store is the per-PE line container: fully associative (the paper's
// model) or set-associative (the hardware-realism extension).
type store interface {
	lookup(line int32) *entry
	touch(e *entry)
	insert(line int32, st state) (victim *entry)
	invalidate(line int32) bool
	len() int
	forEach(f func(*entry))
}

// assocCache is a fully associative cache with perfect LRU replacement,
// matching the paper's cache model ("Caches are modeled as fully
// associative memories with perfect LRU replacement"). It is a hash map
// from line address to entry plus an intrusive doubly-linked LRU list.
type assocCache struct {
	capacity int
	entries  map[int32]*entry
	lru      entry // sentinel: lru.next is most recent, lru.prev least
	free     []*entry
}

type entry struct {
	line       int32
	st         state
	prev, next *entry
}

func newAssocCache(lines int) *assocCache {
	c := &assocCache{
		capacity: lines,
		entries:  make(map[int32]*entry, lines),
	}
	c.lru.next = &c.lru
	c.lru.prev = &c.lru
	// Preallocate all entries up front: no allocation during simulation.
	pool := make([]entry, lines)
	c.free = make([]*entry, lines)
	for i := range pool {
		c.free[i] = &pool[i]
	}
	return c
}

// lookup returns the entry for line, or nil on miss. It does not touch
// LRU order; callers use touch on hits.
func (c *assocCache) lookup(line int32) *entry { return c.entries[line] }

// touch moves e to the most-recently-used position.
func (c *assocCache) touch(e *entry) {
	c.unlink(e)
	c.pushFront(e)
}

func (c *assocCache) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *assocCache) pushFront(e *entry) {
	e.next = c.lru.next
	e.prev = &c.lru
	c.lru.next.prev = e
	c.lru.next = e
}

// insert adds line with the given state, evicting the LRU entry if the
// cache is full. It returns the evicted victim (with its pre-eviction
// state) or nil. The caller must not retain the victim pointer.
func (c *assocCache) insert(line int32, st state) *entry {
	if e := c.entries[line]; e != nil {
		e.st = st
		c.touch(e)
		return nil
	}
	var victim *entry
	var e *entry
	if len(c.free) > 0 {
		e = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		// Evict least recently used.
		v := c.lru.prev
		c.unlink(v)
		delete(c.entries, v.line)
		victimCopy := *v
		victim = &victimCopy
		e = v
	}
	e.line = line
	e.st = st
	c.entries[line] = e
	c.pushFront(e)
	return victim
}

// invalidate removes line if present, reporting whether it was held.
func (c *assocCache) invalidate(line int32) bool {
	e := c.entries[line]
	if e == nil {
		return false
	}
	c.unlink(e)
	delete(c.entries, line)
	c.free = append(c.free, e)
	return true
}

// len returns the number of resident lines.
func (c *assocCache) len() int { return len(c.entries) }

// forEach visits every resident entry.
func (c *assocCache) forEach(f func(*entry)) {
	for e := c.lru.next; e != &c.lru; e = e.next {
		f(e)
	}
}

// setAssocCache is an N-way set-associative cache with per-set LRU —
// the hardware-realizable variant used by the associativity ablation.
type setAssocCache struct {
	ways int
	sets [][]*entry // each set ordered most-recent first
	mask int32
	n    int
}

func newSetAssocCache(lines, ways int) *setAssocCache {
	numSets := lines / ways
	if numSets < 1 {
		numSets = 1
		ways = lines
	}
	return &setAssocCache{
		ways: ways,
		sets: make([][]*entry, numSets),
		mask: int32(numSets - 1),
	}
}

func (c *setAssocCache) set(line int32) int { return int(line & c.mask) }

func (c *setAssocCache) lookup(line int32) *entry {
	for _, e := range c.sets[c.set(line)] {
		if e.line == line {
			return e
		}
	}
	return nil
}

func (c *setAssocCache) touch(e *entry) {
	s := c.sets[c.set(e.line)]
	for i, x := range s {
		if x == e {
			copy(s[1:i+1], s[:i])
			s[0] = e
			return
		}
	}
}

func (c *setAssocCache) insert(line int32, st state) *entry {
	if e := c.lookup(line); e != nil {
		e.st = st
		c.touch(e)
		return nil
	}
	idx := c.set(line)
	s := c.sets[idx]
	var victim *entry
	if len(s) >= c.ways {
		v := s[len(s)-1]
		victimCopy := *v
		victim = &victimCopy
		s = s[:len(s)-1]
		c.n--
	}
	e := &entry{line: line, st: st}
	c.sets[idx] = append([]*entry{e}, s...)
	c.n++
	return victim
}

func (c *setAssocCache) invalidate(line int32) bool {
	idx := c.set(line)
	s := c.sets[idx]
	for i, e := range s {
		if e.line == line {
			c.sets[idx] = append(s[:i], s[i+1:]...)
			c.n--
			return true
		}
	}
	return false
}

func (c *setAssocCache) len() int { return c.n }

func (c *setAssocCache) forEach(f func(*entry)) {
	for _, s := range c.sets {
		for _, e := range s {
			f(e)
		}
	}
}

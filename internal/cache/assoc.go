package cache

// assocCache is a fully associative cache with perfect LRU replacement,
// matching the paper's cache model ("Caches are modeled as fully
// associative memories with perfect LRU replacement").
//
// The layout is a flat preallocated slab of entries addressed by int32
// index; slab slot 0 is the LRU list sentinel, so index 0 doubles as
// the "empty" marker in the hash table. Residency is tracked by an
// open-addressing hash table (power of two, linear probing, load
// factor <= 0.5) whose slots carry the line key alongside the slab
// index — a probe is a single 8-byte load with no dependent slab
// access — and deletion backshifts the probe chain, so there are no
// tombstones and chains never degrade over a run. LRU order is an
// intrusive doubly-linked list threaded through the slab by index;
// promoting an entry that is already most-recently-used is a no-op
// (the common case on traces, where consecutive words of a line are
// referenced back to back). No operation allocates: the slab, table
// and free list are sized once at construction.
type assocCache struct {
	// slab[1:] are the entries; slab[0] is the LRU sentinel
	// (slab[0].next = MRU, slab[0].prev = LRU).
	slab  []slabEntry
	table []tableSlot
	mask  uint32 // len(table) - 1
	// mru mirrors slab[0].next so the replay kernels' already-MRU check
	// is one header-field load instead of a slab access; unlink and
	// pushFront keep it in sync.
	mru  int32
	free []int32 // slab indices not currently resident
	n    int
}

type slabEntry struct {
	line       int32
	prev, next int32
	st         state
}

// tableSlot is one open-addressing slot: the line key and the slab
// index it maps to (0 = empty slot).
type tableSlot struct {
	line int32
	idx  int32
}

func newAssocCache(lines int) *assocCache {
	size := tableSizeFor(lines)
	c := &assocCache{
		slab:  make([]slabEntry, lines+1),
		table: make([]tableSlot, size),
		mask:  size - 1,
		free:  make([]int32, 0, lines),
	}
	c.slab[0].prev = 0
	c.slab[0].next = 0
	for i := lines; i >= 1; i-- {
		c.free = append(c.free, int32(i))
	}
	return c
}

// slot returns the table slot holding line; the line must be resident.
func (c *assocCache) slot(line int32) uint32 {
	i := hashLine(line) & c.mask
	for c.table[i].line != line || c.table[i].idx == 0 {
		i = (i + 1) & c.mask
	}
	return i
}

func (c *assocCache) lookupIdx(line int32) int32 {
	// The mask is rederived from the local slice length so the compiler
	// can prove i < len(table) and drop the bounds check in the probe
	// loop.
	table := c.table
	if len(table) == 0 {
		return -1
	}
	mask := uint32(len(table) - 1)
	i := hashLine(line) & mask
	for {
		s := table[i]
		if s.line == line && s.idx != 0 {
			return s.idx
		}
		if s.idx == 0 {
			return -1
		}
		i = (i + 1) & mask
	}
}

func (c *assocCache) access(line int32) int32 {
	e := c.lookupIdx(line)
	if e >= 0 && c.mru != e {
		c.relink(e)
	}
	return e
}

// relink moves a resident entry to the MRU position (the slow half of
// access; the replay kernels inline it behind their own MRU check).
func (c *assocCache) relink(e int32) {
	c.unlink(e)
	c.pushFront(e)
}

func (c *assocCache) peek(line int32) int32 { return c.lookupIdx(line) }

func (c *assocCache) state(h int32) state        { return c.slab[h].st }
func (c *assocCache) setState(h int32, st state) { c.slab[h].st = st }

// unlink does not refresh c.mru: every caller either pushes another
// entry to the front right after (which sets it) or fixes it up itself
// (invalidate).
func (c *assocCache) unlink(e int32) {
	p, n := c.slab[e].prev, c.slab[e].next
	c.slab[p].next = n
	c.slab[n].prev = p
}

func (c *assocCache) pushFront(e int32) {
	first := c.slab[0].next
	c.slab[e].next = first
	c.slab[e].prev = 0
	c.slab[first].prev = e
	c.slab[0].next = e
	c.mru = e
}

// tableInsert maps line to slab index e in the first empty probe slot.
func (c *assocCache) tableInsert(line, e int32) {
	i := hashLine(line) & c.mask
	for c.table[i].idx != 0 {
		i = (i + 1) & c.mask
	}
	c.table[i] = tableSlot{line: line, idx: e}
}

// tableDelete removes the slot holding line using backshift deletion:
// subsequent probe-chain entries whose home slot lies outside the gap
// are moved back, so the table never accumulates tombstones.
func (c *assocCache) tableDelete(line int32) {
	i := c.slot(line)
	for {
		c.table[i] = tableSlot{}
		j := i
		for {
			j = (j + 1) & c.mask
			s := c.table[j]
			if s.idx == 0 {
				return
			}
			k := hashLine(s.line) & c.mask
			// Move s back to i if its home slot k is cyclically
			// outside (i, j].
			if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
				c.table[i] = s
				i = j
				break
			}
		}
	}
}

// insert adds line (which must not be resident) with the given state,
// evicting the LRU entry if the cache is full. The victim (line,
// pre-eviction state) is returned by value.
func (c *assocCache) insert(line int32, st state) (h, victimLine int32, victimSt state, evicted bool) {
	var e int32
	if len(c.free) > 0 {
		e = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.n++
	} else {
		// Evict least recently used.
		e = c.slab[0].prev
		c.unlink(e)
		c.tableDelete(c.slab[e].line)
		victimLine, victimSt, evicted = c.slab[e].line, c.slab[e].st, true
	}
	c.slab[e].line = line
	c.slab[e].st = st
	c.tableInsert(line, e)
	c.pushFront(e)
	return e, victimLine, victimSt, evicted
}

// invalidate removes line if present, reporting whether it was held.
func (c *assocCache) invalidate(line int32) bool {
	e := c.lookupIdx(line)
	if e < 0 {
		return false
	}
	c.unlink(e)
	c.mru = c.slab[0].next
	c.tableDelete(line)
	c.free = append(c.free, e)
	c.n--
	return true
}

// len returns the number of resident lines.
func (c *assocCache) len() int { return c.n }

// forEach visits every resident entry in LRU order (most recent first).
func (c *assocCache) forEach(f func(h int32)) {
	for e := c.slab[0].next; e != 0; e = c.slab[e].next {
		f(e)
	}
}

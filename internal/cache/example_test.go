package cache_test

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/trace"
)

// ExampleSimulateAll replays one synthetic trace — two PEs write-
// sharing a few heap lines while each also walks a private stack —
// through three coherency protocols in a single concurrent pass, and
// prints the paper's primary metric (bus traffic per reference) for
// each. One trace walk feeds all simulators; per-configuration
// statistics are identical to simulating each alone.
func ExampleSimulateAll() {
	buf := &trace.Buffer{}
	for i := 0; i < 4096; i++ {
		pe := uint8(i % 2)
		// A shared heap region whose ownership migrates between the PEs
		// in phases (producer/consumer-style coherency traffic)...
		buf.Add(trace.Ref{Addr: 0x100 + uint32(i%16), PE: uint8(i / 64 % 2), Op: trace.OpWrite, Obj: trace.ObjHeap})
		// ...amid a mostly-private environment working set (stack
		// discipline: rewrites and re-reads of a small hot region).
		for j := 0; j < 6; j++ {
			addr := 0x1000*uint32(pe+1) + uint32((i+j)%48)
			op := trace.OpRead
			if j%2 == 0 {
				op = trace.OpWrite
			}
			buf.Add(trace.Ref{Addr: addr, PE: pe, Op: op, Obj: trace.ObjEnvControl})
		}
	}

	protocols := []cache.Protocol{cache.WriteThrough, cache.WriteInBroadcast, cache.Hybrid}
	cfgs := make([]cache.Config, len(protocols))
	for i, p := range protocols {
		cfgs[i] = cache.Config{
			PEs: 2, SizeWords: 1024, LineWords: 4,
			Protocol:      p,
			WriteAllocate: cache.PaperWriteAllocate(p, 1024),
		}
	}
	stats, err := cache.SimulateAll(buf, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range protocols {
		fmt.Printf("%-18v traffic ratio %.3f\n", p, stats[i].TrafficRatio())
	}
	// Output:
	// write-through      traffic ratio 0.610
	// write-in-broadcast traffic ratio 0.074
	// hybrid             traffic ratio 0.182
}

// Package cache implements the paper's trace-driven multiprocessor cache
// simulator: per-PE fully associative caches with perfect LRU replacement
// and a shared bus, under the coherency protocols compared in the paper:
//
//   - conventional write-through with invalidation (the "historically
//     first" coherent cache: every write goes to the bus),
//   - write-in broadcast (distributed invalidation-based copyback,
//     Goodman-style: private dirty lines, invalidate shared copies on
//     write),
//   - write-through broadcast (distributed update-based: writes to
//     shared lines update remote copies in one bus cycle),
//   - hybrid (the paper's firmware-controlled scheme: references tagged
//     Global per Table 1 are written through, references tagged Local
//     are copied back; shared memory stays consistent for global data),
//   - pure copyback (write-back; coherent only for single-PE traces,
//     used as the sequential locality reference).
//
// Performance is reported primarily as the traffic ratio: words moved on
// the bus divided by words referenced by the processors, with a line
// fill or dirty write-back costing LineWords words and a write-through
// word, broadcast update or invalidation costing one word.
//
// # Kernel layout
//
// The per-reference kernel is allocation-free and pointer-free in
// steady state. Each PE's resident lines live in flat preallocated
// storage addressed by int32 handles — a slab plus open-addressing
// hash table with index-based intrusive LRU links for the fully
// associative model (assoc.go), or per-set MRU-ordered arrays rotated
// in place for the set-associative variant (setassoc.go). A shared
// snoop directory (directory.go) keeps a presence bitmask of holders
// per cached line, so coherency actions visit only the PEs that
// actually hold the line instead of scanning every cache. Batch replay
// (batch.go) runs protocol-specialized kernels with the coherency
// dispatch hoisted out of the per-reference loop; statistics are
// bit-identical to the one-reference-at-a-time Sink path.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/trace"
)

// Protocol selects a coherency scheme.
type Protocol uint8

const (
	// WriteThrough is the conventional write-through invalidate cache.
	WriteThrough Protocol = iota
	// WriteInBroadcast is the invalidation-based broadcast (copyback)
	// cache.
	WriteInBroadcast
	// WriteThroughBroadcast is the update-based broadcast cache.
	WriteThroughBroadcast
	// Hybrid is the paper's tag-driven write-through-global /
	// copyback-local scheme.
	Hybrid
	// Copyback is a plain write-back cache with no coherency actions;
	// valid as a reference point for single-PE (sequential) traces.
	Copyback

	numProtocols = int(Copyback) + 1
)

var protocolNames = [...]string{
	WriteThrough:          "write-through",
	WriteInBroadcast:      "write-in-broadcast",
	WriteThroughBroadcast: "write-through-broadcast",
	Hybrid:                "hybrid",
	Copyback:              "copyback",
}

// Protocols lists every protocol in declaration order.
func Protocols() []Protocol {
	out := make([]Protocol, numProtocols)
	for i := range out {
		out[i] = Protocol(i)
	}
	return out
}

// String returns the protocol name.
func (p Protocol) String() string {
	if int(p) < len(protocolNames) {
		return protocolNames[p]
	}
	return fmt.Sprintf("protocol(%d)", uint8(p))
}

// Config parameterizes a simulation.
type Config struct {
	// PEs is the number of processors (and caches), at most 64 (the
	// snoop directory tracks holders in a 64-bit presence mask).
	PEs int
	// SizeWords is the per-PE cache size in words.
	SizeWords int
	// LineWords is the cache line (block) size in words; the paper uses
	// four-word lines throughout.
	LineWords int
	// Protocol selects the coherency scheme.
	Protocol Protocol
	// WriteAllocate fetches the line on a write miss when true; the
	// paper found no-write-allocate best for small caches (64-256
	// words) and write-allocate best at 512-1024 words (except hybrid
	// at 512).
	WriteAllocate bool
	// Assoc selects N-way set associativity; 0 means fully associative
	// (the paper's model).
	Assoc int
}

// PaperWriteAllocate returns the allocation policy the paper selected for
// a given protocol and cache size ("These selections were made on the
// basis of the policy which produced the lowest traffic"): write-allocate
// from 512 words upward, except the hybrid cache which still used
// no-write-allocate at 512 words.
func PaperWriteAllocate(p Protocol, sizeWords int) bool {
	if sizeWords < 512 {
		return false
	}
	if p == Hybrid && sizeWords == 512 {
		return false
	}
	return true
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PEs <= 0 {
		return fmt.Errorf("cache: PEs = %d, need >= 1", c.PEs)
	}
	if c.PEs > maxDirPEs {
		return fmt.Errorf("cache: PEs = %d exceeds the %d-PE snoop-directory limit", c.PEs, maxDirPEs)
	}
	if c.LineWords <= 0 || c.LineWords&(c.LineWords-1) != 0 {
		return fmt.Errorf("cache: LineWords = %d, need power of two >= 1", c.LineWords)
	}
	if c.SizeWords < c.LineWords {
		return fmt.Errorf("cache: SizeWords = %d smaller than line %d", c.SizeWords, c.LineWords)
	}
	if int(c.Protocol) >= numProtocols {
		return fmt.Errorf("cache: unknown protocol %d", c.Protocol)
	}
	if c.Protocol == Copyback && c.PEs > 1 {
		return fmt.Errorf("cache: copyback is not coherent; valid for 1 PE only, got %d", c.PEs)
	}
	if c.Assoc < 0 || (c.Assoc > 0 && c.SizeWords/c.LineWords%c.Assoc != 0) {
		return fmt.Errorf("cache: associativity %d does not divide %d lines", c.Assoc, c.SizeWords/c.LineWords)
	}
	if c.Assoc > 0 {
		sets := c.SizeWords / c.LineWords / c.Assoc
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cache: %d sets is not a power of two", sets)
		}
	}
	return nil
}

// Stats accumulates simulation results.
type Stats struct {
	Refs   int64 // processor references (words)
	Reads  int64
	Writes int64

	ReadMisses  int64
	WriteMisses int64 // write references that missed (even if not allocated)

	BusWords      int64 // total words moved on the bus
	LineFills     int64 // line fetches (each LineWords words)
	WriteBacks    int64 // dirty line write-backs (each LineWords words)
	WriteThroughs int64 // single-word writes to memory
	Updates       int64 // single-word broadcast updates to remote caches
	Invalidations int64 // remote copies invalidated (bookkeeping; the
	// invalidating bus word is already counted in
	// WriteThroughs or as one bus word)
}

// Misses returns total misses (read + write).
func (s Stats) Misses() int64 { return s.ReadMisses + s.WriteMisses }

// TrafficRatio returns bus words per processor reference word — the
// paper's primary metric.
func (s Stats) TrafficRatio() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.BusWords) / float64(s.Refs)
}

// MissRatio returns misses per reference.
func (s Stats) MissRatio() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Refs)
}

// line state
type state uint8

const (
	stateShared    state = iota // clean, possibly in other caches
	stateExclusive              // clean, only this cache
	stateModified               // dirty, only this cache
)

// Sim is a multiprocessor cache simulation. It implements trace.Sink
// and trace.BatchSink, so it can be attached directly to the engine or
// fed from a trace.Buffer; batch delivery takes the protocol-specialized
// fast path (batch.go).
type Sim struct {
	cfg    Config
	caches []store
	// flat mirrors caches with their concrete type when the simulation
	// is fully associative (the paper's model); the replay kernels use
	// it to devirtualize the per-reference store calls.
	flat       []*assocCache
	dir        *snoopDir // presence directory; nil for single-PE machines
	stats      Stats
	lineShift  uint
	perPEBus   []int64 // bus words attributed to each PE (for bus model)
	perPERefs  []int64
	flushCount int64
	// OnBus, when set, observes every bus transaction: the issuing PE,
	// the transaction length in words, and the reference index at issue
	// time (a proxy clock for the discrete-event bus model).
	OnBus func(pe, words int, refIndex int64)
}

// New builds a simulator; it panics on invalid configuration (the
// experiment drivers validate first via Config.Validate).
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineWords {
		shift++
	}
	s := &Sim{
		cfg:       cfg,
		caches:    make([]store, cfg.PEs),
		lineShift: shift,
		perPEBus:  make([]int64, cfg.PEs),
		perPERefs: make([]int64, cfg.PEs),
	}
	lines := cfg.SizeWords / cfg.LineWords
	if cfg.Assoc == 0 {
		s.flat = make([]*assocCache, cfg.PEs)
	}
	for i := range s.caches {
		if cfg.Assoc > 0 {
			s.caches[i] = newSetAssocCache(lines, cfg.Assoc)
		} else {
			c := newAssocCache(lines)
			s.flat[i] = c
			s.caches[i] = c
		}
	}
	if cfg.PEs > 1 {
		s.dir = newSnoopDir(cfg.PEs, lines)
	}
	return s
}

// Config returns the simulation configuration.
func (s *Sim) Config() Config { return s.cfg }

// Stats returns the accumulated statistics.
func (s *Sim) Stats() Stats { return s.stats }

// PerPEBusWords returns bus words attributed to each PE.
func (s *Sim) PerPEBusWords() []int64 { return s.perPEBus }

// PerPERefs returns processor references per PE.
func (s *Sim) PerPERefs() []int64 { return s.perPERefs }

// busWord charges one word of bus traffic to pe (the write handlers'
// write-through, invalidation and update cycles).
func (s *Sim) busWord(pe int) {
	s.stats.BusWords++
	s.perPEBus[pe]++
	if s.OnBus != nil {
		s.busEvent(pe)
	}
}

// busEvent notifies the observer of a one-word transaction.
func (s *Sim) busEvent(pe int) {
	s.OnBus(pe, 1, s.stats.Refs)
}

// bus charges words of bus traffic to pe.
func (s *Sim) bus(pe int, words int64) {
	s.stats.BusWords += words
	s.perPEBus[pe] += words
	if s.OnBus != nil {
		s.OnBus(pe, int(words), s.stats.Refs)
	}
}

// accessPE and setStatePE route a store operation to the concrete
// fully associative cache when one exists, avoiding the interface
// dispatch on the per-reference hot path; the set-associative variant
// falls back to the store interface.

func (s *Sim) accessPE(pe int, line int32) int32 {
	if s.flat != nil {
		return s.flat[pe].access(line)
	}
	return s.caches[pe].access(line)
}

func (s *Sim) setStatePE(pe int, h int32, st state) {
	if s.flat != nil {
		s.flat[pe].setState(h, st)
		return
	}
	s.caches[pe].setState(h, st)
}

// remoteHolders returns the presence mask of caches other than pe
// holding the line.
func (s *Sim) remoteHolders(pe int, line int32) uint64 {
	if s.dir == nil {
		return 0
	}
	return s.dir.holders(line) &^ (1 << uint(pe))
}

// invalidateOthers removes the line from all caches except pe.
func (s *Sim) invalidateOthers(pe int, line int32) {
	if s.dir == nil {
		return
	}
	slot := s.dir.find(line)
	if slot < 0 {
		return
	}
	s.invalidateOthersAt(slot, pe, line)
}

// invalidateOthersAt removes the line from all caches except pe, given
// its directory slot (the replay kernels inline the probe and call this
// only when some cache holds the line).
func (s *Sim) invalidateOthersAt(slot int32, pe int, line int32) {
	m := s.dir.holdersAt(slot) &^ (1 << uint(pe))
	if m == 0 {
		return
	}
	for mm := m; mm != 0; mm &= mm - 1 {
		if s.caches[bits.TrailingZeros64(mm)].invalidate(line) {
			s.stats.Invalidations++
		}
	}
	s.dir.keepOnlyAt(slot, pe)
}

// updateOthers marks remote copies updated (word broadcast); they remain
// Shared. Returns whether any remote copy existed.
func (s *Sim) updateOthers(pe int, line int32) bool {
	m := s.remoteHolders(pe, line)
	if m == 0 {
		return false
	}
	for ; m != 0; m &= m - 1 {
		c := s.caches[bits.TrailingZeros64(m)]
		if h := c.peek(line); h >= 0 {
			// Remote copy receives the word; its state stays Shared
			// (an updated copy can never be Modified).
			c.setState(h, stateShared)
		}
	}
	return true
}

// fill inserts the line into pe's cache with the given state, charging a
// line fetch and any write-back of the evicted victim, and returns the
// new entry's handle.
func (s *Sim) fill(pe int, line int32, st state) int32 {
	// bus() is expanded manually here: fill runs on every miss and the
	// extra call (bus exceeds the inlining budget) is measurable.
	lw := int64(s.cfg.LineWords)
	s.stats.LineFills++
	s.stats.BusWords += lw
	s.perPEBus[pe] += lw
	if s.OnBus != nil {
		s.OnBus(pe, int(lw), s.stats.Refs)
	}
	h, vLine, vSt, evicted := s.caches[pe].insert(line, st)
	if evicted {
		if s.dir != nil {
			s.dir.remove(pe, vLine)
		}
		if vSt == stateModified {
			s.stats.WriteBacks++
			s.stats.BusWords += lw
			s.perPEBus[pe] += lw
			if s.OnBus != nil {
				s.OnBus(pe, int(lw), s.stats.Refs)
			}
		}
	}
	if s.dir != nil {
		s.dir.add(pe, line)
	}
	return h
}

// fetchCoherent performs the coherence work for a line fetch in the
// broadcast protocols: if a remote cache holds the line Modified it
// supplies the data and memory is updated (one extra line of traffic),
// and every remote holder sees the fetch on the bus and demotes its
// copy to Shared, making the resulting local state Shared too.
func (s *Sim) fetchCoherent(pe int, line int32) state {
	m := s.remoteHolders(pe, line)
	if m == 0 {
		return stateExclusive
	}
	dirtyPE := -1
	for ; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		c := s.caches[i]
		if h := c.peek(line); h >= 0 {
			if c.state(h) == stateModified {
				dirtyPE = i
			}
			c.setState(h, stateShared)
		}
	}
	if dirtyPE >= 0 {
		// Owner writes the line back (memory reflection) and keeps a
		// now-clean shared copy.
		s.stats.WriteBacks++
		s.bus(dirtyPE, int64(s.cfg.LineWords))
	}
	return stateShared
}

// Add processes one reference. It implements trace.Sink.
func (s *Sim) Add(r trace.Ref) {
	pe := int(r.PE)
	if pe >= s.cfg.PEs {
		// References from PEs outside the simulated machine are
		// ignored; experiment drivers always size PEs to the trace.
		return
	}
	line := int32(r.Addr >> s.lineShift)
	s.stats.Refs++
	s.perPERefs[pe]++
	if r.Op == trace.OpRead {
		s.stats.Reads++
		if s.accessPE(pe, line) < 0 {
			s.readMiss(pe, line)
		}
	} else {
		s.stats.Writes++
		s.write(pe, line, r.Obj)
	}
}

// readMiss services a read miss under the configured protocol.
func (s *Sim) readMiss(pe int, line int32) {
	switch s.cfg.Protocol {
	case WriteThrough:
		// Memory is always current; plain fill.
		s.stats.ReadMisses++
		s.fill(pe, line, stateShared)
	case Copyback:
		s.stats.ReadMisses++
		s.fill(pe, line, stateExclusive)
	case WriteInBroadcast, WriteThroughBroadcast:
		s.readMissBroadcast(pe, line)
	case Hybrid:
		s.readMissHybrid(pe, line)
	}
}

// readMissBroadcast services a read miss under either broadcast
// protocol (the replay kernels call it directly, skipping the protocol
// switch).
func (s *Sim) readMissBroadcast(pe int, line int32) {
	s.stats.ReadMisses++
	st := s.fetchCoherent(pe, line)
	s.fill(pe, line, st)
}

// readMissHybrid services a read miss under the hybrid protocol:
// memory is consistent for global data (written through) and local
// data is never remotely cached, so a plain fill suffices; remote
// state is unaffected.
func (s *Sim) readMissHybrid(pe int, line int32) {
	s.stats.ReadMisses++
	st := stateExclusive
	if s.remoteHolders(pe, line) != 0 {
		st = stateShared
	}
	s.fill(pe, line, st)
}

// write services a write reference (hit or miss) by dispatching to the
// protocol's write handler.
func (s *Sim) write(pe int, line int32, obj trace.ObjType) {
	h := s.accessPE(pe, line)
	if h < 0 {
		s.stats.WriteMisses++
	}
	switch s.cfg.Protocol {
	case WriteThrough:
		s.writeThrough(pe, line, h)
	case Copyback:
		s.writeCopyback(pe, line, h)
	case WriteInBroadcast:
		s.writeInBroadcast(pe, line, h)
	case WriteThroughBroadcast:
		s.writeUpdate(pe, line, h)
	case Hybrid:
		s.writeHybrid(pe, line, h, obj)
	}
}

// writeThrough handles a write under the conventional write-through
// protocol: every write appears on the bus as one word; the bus write
// also serves as the invalidation signal. h is the handle of the local
// copy (already promoted to MRU), or -1 on a write miss.
func (s *Sim) writeThrough(pe int, line int32, h int32) {
	s.stats.WriteThroughs++
	s.busWord(pe)
	s.invalidateOthers(pe, line)
	if h < 0 && s.cfg.WriteAllocate {
		s.fill(pe, line, stateShared)
	}
}

// writeCopyback handles a write under the plain copyback protocol.
func (s *Sim) writeCopyback(pe int, line int32, h int32) {
	if h >= 0 {
		s.setStatePE(pe, h, stateModified)
		return
	}
	if s.cfg.WriteAllocate {
		s.fill(pe, line, stateModified)
	} else {
		s.stats.WriteThroughs++
		s.busWord(pe)
	}
}

// writeInBroadcast handles a write under the invalidation-based
// broadcast protocol.
func (s *Sim) writeInBroadcast(pe int, line int32, h int32) {
	if h >= 0 {
		c := s.caches[pe]
		switch c.state(h) {
		case stateModified:
			// silent
		case stateExclusive:
			c.setState(h, stateModified)
		case stateShared:
			// One bus cycle invalidates all remote copies.
			s.busWord(pe)
			s.invalidateOthers(pe, line)
			c.setState(h, stateModified)
		}
		return
	}
	if s.cfg.WriteAllocate {
		// Read-for-ownership: fetch then invalidate remote copies.
		s.fetchCoherent(pe, line)
		s.invalidateOthers(pe, line)
		s.fill(pe, line, stateModified)
	} else {
		// Word goes to memory; the bus write invalidates copies.
		s.stats.WriteThroughs++
		s.busWord(pe)
		s.invalidateOthers(pe, line)
	}
}

// writeUpdate handles a write under the update-based write-through
// broadcast protocol.
func (s *Sim) writeUpdate(pe int, line int32, h int32) {
	if h >= 0 {
		c := s.caches[pe]
		switch c.state(h) {
		case stateModified:
			// private dirty: silent
		case stateExclusive:
			c.setState(h, stateModified)
		case stateShared:
			// Broadcast the word to remote copies and memory.
			s.stats.Updates++
			s.busWord(pe)
			if !s.updateOthers(pe, line) {
				// No remote copy after all: promote to private.
				c.setState(h, stateExclusive)
			}
		}
		return
	}
	if s.cfg.WriteAllocate {
		st := s.fetchCoherent(pe, line)
		nh := s.fill(pe, line, st)
		if st == stateShared {
			s.stats.Updates++
			s.busWord(pe)
			s.updateOthers(pe, line)
		} else {
			s.setStatePE(pe, nh, stateModified)
		}
	} else {
		s.stats.WriteThroughs++
		s.busWord(pe)
		s.updateOthers(pe, line)
	}
}

// writeHybrid handles a write under the paper's hybrid protocol.
func (s *Sim) writeHybrid(pe int, line int32, h int32, obj trace.ObjType) {
	if obj.Global() {
		// Global data is written through so that shared memory
		// stays consistent; the bus write invalidates remote
		// copies. A present line is updated but never dirtied by
		// a global write.
		s.stats.WriteThroughs++
		s.busWord(pe)
		s.invalidateOthers(pe, line)
		if h < 0 && s.cfg.WriteAllocate {
			s.fill(pe, line, stateShared)
		}
		return
	}
	// Local data: copyback. Only the owner ever touches it, so no
	// coherency actions are needed.
	if h >= 0 {
		s.setStatePE(pe, h, stateModified)
		return
	}
	if s.cfg.WriteAllocate {
		s.fill(pe, line, stateModified)
	} else {
		s.stats.WriteThroughs++
		s.busWord(pe)
	}
}

// Flush writes back all dirty lines (end-of-run accounting, optional; the
// paper's traffic ratios do not include a final flush, so experiment
// drivers do not call it — it exists for completeness and tests).
func (s *Sim) Flush() {
	for pe, c := range s.caches {
		s.flushPE(pe, c)
	}
	s.flushCount++
}

func (s *Sim) flushPE(pe int, c store) {
	c.forEach(func(h int32) {
		if c.state(h) == stateModified {
			s.stats.WriteBacks++
			s.bus(pe, int64(s.cfg.LineWords))
			c.setState(h, stateShared)
		}
	})
}

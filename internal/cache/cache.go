// Package cache implements the paper's trace-driven multiprocessor cache
// simulator: per-PE fully associative caches with perfect LRU replacement
// and a shared bus, under the coherency protocols compared in the paper:
//
//   - conventional write-through with invalidation (the "historically
//     first" coherent cache: every write goes to the bus),
//   - write-in broadcast (distributed invalidation-based copyback,
//     Goodman-style: private dirty lines, invalidate shared copies on
//     write),
//   - write-through broadcast (distributed update-based: writes to
//     shared lines update remote copies in one bus cycle),
//   - hybrid (the paper's firmware-controlled scheme: references tagged
//     Global per Table 1 are written through, references tagged Local
//     are copied back; shared memory stays consistent for global data),
//   - pure copyback (write-back; coherent only for single-PE traces,
//     used as the sequential locality reference).
//
// Performance is reported primarily as the traffic ratio: words moved on
// the bus divided by words referenced by the processors, with a line
// fill or dirty write-back costing LineWords words and a write-through
// word, broadcast update or invalidation costing one word.
package cache

import (
	"fmt"

	"repro/internal/trace"
)

// Protocol selects a coherency scheme.
type Protocol uint8

const (
	// WriteThrough is the conventional write-through invalidate cache.
	WriteThrough Protocol = iota
	// WriteInBroadcast is the invalidation-based broadcast (copyback)
	// cache.
	WriteInBroadcast
	// WriteThroughBroadcast is the update-based broadcast cache.
	WriteThroughBroadcast
	// Hybrid is the paper's tag-driven write-through-global /
	// copyback-local scheme.
	Hybrid
	// Copyback is a plain write-back cache with no coherency actions;
	// valid as a reference point for single-PE (sequential) traces.
	Copyback

	numProtocols = int(Copyback) + 1
)

var protocolNames = [...]string{
	WriteThrough:          "write-through",
	WriteInBroadcast:      "write-in-broadcast",
	WriteThroughBroadcast: "write-through-broadcast",
	Hybrid:                "hybrid",
	Copyback:              "copyback",
}

// Protocols lists every protocol in declaration order.
func Protocols() []Protocol {
	out := make([]Protocol, numProtocols)
	for i := range out {
		out[i] = Protocol(i)
	}
	return out
}

// String returns the protocol name.
func (p Protocol) String() string {
	if int(p) < len(protocolNames) {
		return protocolNames[p]
	}
	return fmt.Sprintf("protocol(%d)", uint8(p))
}

// Config parameterizes a simulation.
type Config struct {
	// PEs is the number of processors (and caches).
	PEs int
	// SizeWords is the per-PE cache size in words.
	SizeWords int
	// LineWords is the cache line (block) size in words; the paper uses
	// four-word lines throughout.
	LineWords int
	// Protocol selects the coherency scheme.
	Protocol Protocol
	// WriteAllocate fetches the line on a write miss when true; the
	// paper found no-write-allocate best for small caches (64-256
	// words) and write-allocate best at 512-1024 words (except hybrid
	// at 512).
	WriteAllocate bool
	// Assoc selects N-way set associativity; 0 means fully associative
	// (the paper's model).
	Assoc int
}

// PaperWriteAllocate returns the allocation policy the paper selected for
// a given protocol and cache size ("These selections were made on the
// basis of the policy which produced the lowest traffic"): write-allocate
// from 512 words upward, except the hybrid cache which still used
// no-write-allocate at 512 words.
func PaperWriteAllocate(p Protocol, sizeWords int) bool {
	if sizeWords < 512 {
		return false
	}
	if p == Hybrid && sizeWords == 512 {
		return false
	}
	return true
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PEs <= 0 {
		return fmt.Errorf("cache: PEs = %d, need >= 1", c.PEs)
	}
	if c.LineWords <= 0 || c.LineWords&(c.LineWords-1) != 0 {
		return fmt.Errorf("cache: LineWords = %d, need power of two >= 1", c.LineWords)
	}
	if c.SizeWords < c.LineWords {
		return fmt.Errorf("cache: SizeWords = %d smaller than line %d", c.SizeWords, c.LineWords)
	}
	if int(c.Protocol) >= numProtocols {
		return fmt.Errorf("cache: unknown protocol %d", c.Protocol)
	}
	if c.Protocol == Copyback && c.PEs > 1 {
		return fmt.Errorf("cache: copyback is not coherent; valid for 1 PE only, got %d", c.PEs)
	}
	if c.Assoc < 0 || (c.Assoc > 0 && c.SizeWords/c.LineWords%c.Assoc != 0) {
		return fmt.Errorf("cache: associativity %d does not divide %d lines", c.Assoc, c.SizeWords/c.LineWords)
	}
	if c.Assoc > 0 {
		sets := c.SizeWords / c.LineWords / c.Assoc
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cache: %d sets is not a power of two", sets)
		}
	}
	return nil
}

// Stats accumulates simulation results.
type Stats struct {
	Refs   int64 // processor references (words)
	Reads  int64
	Writes int64

	ReadMisses  int64
	WriteMisses int64 // write references that missed (even if not allocated)

	BusWords      int64 // total words moved on the bus
	LineFills     int64 // line fetches (each LineWords words)
	WriteBacks    int64 // dirty line write-backs (each LineWords words)
	WriteThroughs int64 // single-word writes to memory
	Updates       int64 // single-word broadcast updates to remote caches
	Invalidations int64 // remote copies invalidated (bookkeeping; the
	// invalidating bus word is already counted in
	// WriteThroughs or as one bus word)
}

// Misses returns total misses (read + write).
func (s Stats) Misses() int64 { return s.ReadMisses + s.WriteMisses }

// TrafficRatio returns bus words per processor reference word — the
// paper's primary metric.
func (s Stats) TrafficRatio() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.BusWords) / float64(s.Refs)
}

// MissRatio returns misses per reference.
func (s Stats) MissRatio() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Refs)
}

// line state
type state uint8

const (
	stateShared    state = iota // clean, possibly in other caches
	stateExclusive              // clean, only this cache
	stateModified               // dirty, only this cache
)

// Sim is a multiprocessor cache simulation. It implements trace.Sink, so
// it can be attached directly to the engine or fed from a trace.Buffer.
type Sim struct {
	cfg        Config
	caches     []store
	stats      Stats
	lineShift  uint
	perPEBus   []int64 // bus words attributed to each PE (for bus model)
	perPERefs  []int64
	flushCount int64
	// OnBus, when set, observes every bus transaction: the issuing PE,
	// the transaction length in words, and the reference index at issue
	// time (a proxy clock for the discrete-event bus model).
	OnBus func(pe, words int, refIndex int64)
}

// New builds a simulator; it panics on invalid configuration (the
// experiment drivers validate first via Config.Validate).
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineWords {
		shift++
	}
	s := &Sim{
		cfg:       cfg,
		caches:    make([]store, cfg.PEs),
		lineShift: shift,
		perPEBus:  make([]int64, cfg.PEs),
		perPERefs: make([]int64, cfg.PEs),
	}
	lines := cfg.SizeWords / cfg.LineWords
	for i := range s.caches {
		if cfg.Assoc > 0 {
			s.caches[i] = newSetAssocCache(lines, cfg.Assoc)
		} else {
			s.caches[i] = newAssocCache(lines)
		}
	}
	return s
}

// Config returns the simulation configuration.
func (s *Sim) Config() Config { return s.cfg }

// Stats returns the accumulated statistics.
func (s *Sim) Stats() Stats { return s.stats }

// PerPEBusWords returns bus words attributed to each PE.
func (s *Sim) PerPEBusWords() []int64 { return s.perPEBus }

// PerPERefs returns processor references per PE.
func (s *Sim) PerPERefs() []int64 { return s.perPERefs }

// bus charges words of bus traffic to pe.
func (s *Sim) bus(pe int, words int64) {
	s.stats.BusWords += words
	s.perPEBus[pe] += words
	if s.OnBus != nil {
		s.OnBus(pe, int(words), s.stats.Refs)
	}
}

// othersHolding reports whether any cache other than pe holds the line,
// and returns one holder whose copy is Modified (or -1).
func (s *Sim) othersHolding(pe int, line int32) (held bool, dirtyPE int) {
	dirtyPE = -1
	for i, c := range s.caches {
		if i == pe {
			continue
		}
		if e := c.lookup(line); e != nil {
			held = true
			if e.st == stateModified {
				dirtyPE = i
			}
		}
	}
	return held, dirtyPE
}

// invalidateOthers removes the line from all caches except pe.
func (s *Sim) invalidateOthers(pe int, line int32) {
	for i, c := range s.caches {
		if i == pe {
			continue
		}
		if c.invalidate(line) {
			s.stats.Invalidations++
		}
	}
}

// updateOthers marks remote copies updated (word broadcast); they remain
// Shared. Returns whether any remote copy existed.
func (s *Sim) updateOthers(pe int, line int32) bool {
	any := false
	for i, c := range s.caches {
		if i == pe {
			continue
		}
		if e := c.lookup(line); e != nil {
			any = true
			// Remote copy receives the word; its state stays Shared
			// (an updated copy can never be Modified).
			e.st = stateShared
		}
	}
	return any
}

// fill inserts the line into pe's cache with the given state, charging a
// line fetch and any write-back of the evicted victim.
func (s *Sim) fill(pe int, line int32, st state) *entry {
	s.stats.LineFills++
	s.bus(pe, int64(s.cfg.LineWords))
	victim := s.caches[pe].insert(line, st)
	if victim != nil && victim.st == stateModified {
		s.stats.WriteBacks++
		s.bus(pe, int64(s.cfg.LineWords))
	}
	return s.caches[pe].lookup(line)
}

// fetchCoherent performs the coherence work for a line fetch in the
// broadcast protocols: if a remote cache holds the line Modified it
// supplies the data and memory is updated (one extra line of traffic),
// and the resulting local state is Shared if any remote copy remains.
func (s *Sim) fetchCoherent(pe int, line int32) state {
	held, dirtyPE := s.othersHolding(pe, line)
	if dirtyPE >= 0 {
		// Owner writes the line back (memory reflection) and keeps a
		// now-clean shared copy.
		s.stats.WriteBacks++
		s.bus(dirtyPE, int64(s.cfg.LineWords))
	}
	if held {
		// Every remote holder sees the fetch on the bus and demotes
		// its copy to Shared.
		for i, c := range s.caches {
			if i == pe {
				continue
			}
			if e := c.lookup(line); e != nil {
				e.st = stateShared
			}
		}
		return stateShared
	}
	return stateExclusive
}

// Add processes one reference. It implements trace.Sink.
func (s *Sim) Add(r trace.Ref) {
	pe := int(r.PE)
	if pe >= s.cfg.PEs {
		// References from PEs outside the simulated machine are
		// ignored; experiment drivers always size PEs to the trace.
		return
	}
	line := int32(r.Addr >> s.lineShift)
	s.stats.Refs++
	s.perPERefs[pe]++
	if r.Op == trace.OpRead {
		s.stats.Reads++
		s.read(pe, line)
	} else {
		s.stats.Writes++
		s.write(pe, line, r.Obj)
	}
}

func (s *Sim) read(pe int, line int32) {
	c := s.caches[pe]
	if e := c.lookup(line); e != nil {
		c.touch(e)
		return
	}
	s.stats.ReadMisses++
	switch s.cfg.Protocol {
	case WriteThrough:
		// Memory is always current; plain fill.
		s.fill(pe, line, stateShared)
	case Copyback:
		s.fill(pe, line, stateExclusive)
	case WriteInBroadcast, WriteThroughBroadcast:
		st := s.fetchCoherent(pe, line)
		s.fill(pe, line, st)
	case Hybrid:
		// Memory is consistent for global data (written through) and
		// local data is never remotely cached, so a plain fill
		// suffices; remote state is unaffected.
		held, _ := s.othersHolding(pe, line)
		st := stateExclusive
		if held {
			st = stateShared
		}
		s.fill(pe, line, st)
	}
}

func (s *Sim) write(pe int, line int32, obj trace.ObjType) {
	c := s.caches[pe]
	e := c.lookup(line)
	if e == nil {
		s.stats.WriteMisses++
	} else {
		c.touch(e)
	}
	switch s.cfg.Protocol {
	case WriteThrough:
		// Every write appears on the bus as one word; the bus write
		// also serves as the invalidation signal.
		s.stats.WriteThroughs++
		s.bus(pe, 1)
		s.invalidateOthers(pe, line)
		if e == nil && s.cfg.WriteAllocate {
			s.fill(pe, line, stateShared)
		}

	case Copyback:
		if e != nil {
			e.st = stateModified
			return
		}
		if s.cfg.WriteAllocate {
			s.fill(pe, line, stateModified)
		} else {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
		}

	case WriteInBroadcast:
		if e != nil {
			switch e.st {
			case stateModified:
				// silent
			case stateExclusive:
				e.st = stateModified
			case stateShared:
				// One bus cycle invalidates all remote copies.
				s.bus(pe, 1)
				s.invalidateOthers(pe, line)
				e.st = stateModified
			}
			return
		}
		if s.cfg.WriteAllocate {
			// Read-for-ownership: fetch then invalidate remote copies.
			s.fetchCoherent(pe, line)
			s.invalidateOthers(pe, line)
			s.fill(pe, line, stateModified)
		} else {
			// Word goes to memory; the bus write invalidates copies.
			s.stats.WriteThroughs++
			s.bus(pe, 1)
			s.invalidateOthers(pe, line)
		}

	case WriteThroughBroadcast:
		if e != nil {
			switch e.st {
			case stateModified:
				// private dirty: silent
			case stateExclusive:
				e.st = stateModified
			case stateShared:
				// Broadcast the word to remote copies and memory.
				s.stats.Updates++
				s.bus(pe, 1)
				if !s.updateOthers(pe, line) {
					// No remote copy after all: promote to private.
					e.st = stateExclusive
				}
			}
			return
		}
		if s.cfg.WriteAllocate {
			st := s.fetchCoherent(pe, line)
			ne := s.fill(pe, line, st)
			if st == stateShared {
				s.stats.Updates++
				s.bus(pe, 1)
				s.updateOthers(pe, line)
			} else if ne != nil {
				ne.st = stateModified
			}
		} else {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
			s.updateOthers(pe, line)
		}

	case Hybrid:
		if obj.Global() {
			// Global data is written through so that shared memory
			// stays consistent; the bus write invalidates remote
			// copies. A present line is updated but never dirtied by
			// a global write.
			s.stats.WriteThroughs++
			s.bus(pe, 1)
			s.invalidateOthers(pe, line)
			if e == nil && s.cfg.WriteAllocate {
				s.fill(pe, line, stateShared)
			}
			return
		}
		// Local data: copyback. Only the owner ever touches it, so no
		// coherency actions are needed.
		if e != nil {
			e.st = stateModified
			return
		}
		if s.cfg.WriteAllocate {
			s.fill(pe, line, stateModified)
		} else {
			s.stats.WriteThroughs++
			s.bus(pe, 1)
		}
	}
}

// Flush writes back all dirty lines (end-of-run accounting, optional; the
// paper's traffic ratios do not include a final flush, so experiment
// drivers do not call it — it exists for completeness and tests).
func (s *Sim) Flush() {
	for pe, c := range s.caches {
		s.flushPE(pe, c)
	}
	s.flushCount++
}

func (s *Sim) flushPE(pe int, c store) {
	c.forEach(func(e *entry) {
		if e.st == stateModified {
			s.stats.WriteBacks++
			s.bus(pe, int64(s.cfg.LineWords))
			e.st = stateShared
		}
	})
}

package cache

import (
	"fmt"

	"repro/internal/trace"
)

// Set-sharded parallel replay.
//
// A set-associative simulation decomposes exactly by cache set: the
// state a reference touches — the per-PE set arrays, the snoop
// directory entries for lines mapping to that set, the victim it may
// evict — is a function of set(addr) alone, and every statistic the
// simulator accumulates is attributable to exactly one processed
// reference. So K workers, each running the unmodified batch kernels
// (batch.go) over only the references whose set falls in its range,
// together perform precisely the state transitions and stat increments
// of a single sequential simulator, just partitioned. The deterministic
// reduction is then trivial: field-wise int64 sums (commutative and
// exact — no floats), merged in shard-index order, bit-identical to
// K=1 for every protocol. The golden-parity suite (parity_test.go)
// pins the sequential kernels to the seed refsim; sharded_test.go pins
// the sharded path to the sequential kernels across the full protocol
// matrix, closing the loop.
//
// The fully associative model (Assoc = 0, the paper's default) is one
// global LRU pool — a victim can come from anywhere, so there is no
// disjoint decomposition and EffectiveShards clamps to 1. Sharding
// pays off on the set-associative configurations (the assoc ablation
// and any Assoc > 0 sweep), and on those the shard count is further
// clamped to the set count.
//
// Routing is broadcast-and-filter rather than producer-side routing:
// every shard worker receives the full stream (via trace.FanOut) and
// filters it down to its own set range into a reusable scratch buffer.
// This keeps the producer single-goroutine and allocation-free, moves
// the filtering cost itself onto the parallel workers, and reuses the
// fan-out's ordering guarantee: each worker sees its subsequence in
// exact emission order, which the kernels require.

// EffectiveShards returns the shard count actually usable for cfg when
// k workers are requested: k clamped to the number of cache sets
// (fully associative caches have a single global replacement pool and
// always yield 1). k <= 0 is treated as 1. The cachesim CLI reports
// this so a user asking for 8 shards on a fully associative run sees
// why they got a sequential replay.
func EffectiveShards(cfg Config, k int) int {
	if k < 1 {
		k = 1
	}
	if cfg.Assoc <= 0 {
		return 1
	}
	sets := cfg.SizeWords / cfg.LineWords / cfg.Assoc
	if sets < 1 {
		sets = 1
	}
	if k > sets {
		k = sets
	}
	return k
}

// shardWorker filters the full reference stream down to one contiguous
// range of cache sets and feeds the survivors to an unmodified
// sequential simulator. It is driven by exactly one fan-out goroutine,
// so the scratch buffer is reused without synchronization.
type shardWorker struct {
	sim       *Sim
	lineShift uint
	setMask   int32
	lo, hi    int32 // owned set range [lo, hi)
	scratch   []trace.Ref
}

// Add implements trace.Sink for the single-reference path.
func (w *shardWorker) Add(r trace.Ref) {
	set := int32(r.Addr>>w.lineShift) & w.setMask
	if set >= w.lo && set < w.hi {
		w.sim.Add(r)
	}
}

// AddBatch implements trace.BatchSink: filter into the scratch buffer,
// then run the batch kernels over the survivors. The kernels treat the
// slice as read-only and do not retain it, so scratch is safely reused
// across batches (steady state allocates nothing).
func (w *shardWorker) AddBatch(refs []trace.Ref) {
	scratch := w.scratch[:0]
	for _, r := range refs {
		set := int32(r.Addr>>w.lineShift) & w.setMask
		if set >= w.lo && set < w.hi {
			scratch = append(scratch, r)
		}
	}
	w.scratch = scratch
	if len(scratch) > 0 {
		w.sim.AddBatch(scratch)
	}
}

// AddBatchStable implements trace.StableBatchSink; the filter copies
// into scratch either way, so the stable path is the same.
func (w *shardWorker) AddBatchStable(refs []trace.Ref) { w.AddBatch(refs) }

// Sharded is a set-sharded parallel cache simulation. It implements
// trace.Sink, trace.BatchSink and trace.StableBatchSink, so it drops in
// anywhere a *Sim does on the replay side: attach it to a trace source,
// feed the stream, Close, then read merged statistics.
//
// The producer side (Add/AddBatch/Close) is single-goroutine, like any
// Sink. Close flushes the internal fan-out, waits for every shard
// worker to drain, and performs the deterministic reduction; reading
// stats before Close is a programming error and panics.
type Sharded struct {
	cfg       Config
	shards    int
	fan       *trace.FanOut
	workers   []*shardWorker
	stats     Stats
	perPEBus  []int64
	perPERefs []int64
	closed    bool
}

// NewSharded builds a set-sharded simulator with k shard workers
// (clamped per EffectiveShards; k = 1 still works and is just a fan-out
// wrapped sequential Sim). Like New it panics on invalid configuration.
func NewSharded(cfg Config, k int) *Sharded {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	k = EffectiveShards(cfg, k)
	sets := int32(1)
	if cfg.Assoc > 0 {
		sets = int32(cfg.SizeWords / cfg.LineWords / cfg.Assoc)
	}
	s := &Sharded{
		cfg:       cfg,
		shards:    k,
		workers:   make([]*shardWorker, k),
		perPEBus:  make([]int64, cfg.PEs),
		perPERefs: make([]int64, cfg.PEs),
	}
	sinks := make([]trace.Sink, k)
	for i := range s.workers {
		sim := New(cfg)
		w := &shardWorker{
			sim:       sim,
			lineShift: sim.lineShift,
			setMask:   sets - 1,
			lo:        int32(i) * sets / int32(k),
			hi:        int32(i+1) * sets / int32(k),
		}
		s.workers[i] = w
		sinks[i] = w
	}
	s.fan = trace.NewFanOut(trace.FanOutConfig{}, sinks...)
	return s
}

// Shards returns the effective shard worker count.
func (s *Sharded) Shards() int { return s.shards }

// Config returns the simulated configuration.
func (s *Sharded) Config() Config { return s.cfg }

// Add implements trace.Sink.
func (s *Sharded) Add(r trace.Ref) { s.fan.Add(r) }

// AddBatch implements trace.BatchSink (the batch is copied into the
// fan-out's own chunks, so the caller's slice is reusable on return).
func (s *Sharded) AddBatch(refs []trace.Ref) { s.fan.AddBatch(refs) }

// AddBatchStable implements trace.StableBatchSink (full chunks are
// dispatched to the shard workers without copying).
func (s *Sharded) AddBatchStable(refs []trace.Ref) { s.fan.AddBatchStable(refs) }

// Close drains the shard workers and merges their statistics in shard
// index order. Every merged quantity is an int64 event count
// attributable to exactly one shard, so the reduction is an exact sum
// and the result is bit-identical to a sequential replay. Close is
// idempotent.
func (s *Sharded) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.fan.Close()
	for _, w := range s.workers {
		s.stats.add(w.sim.Stats())
		for pe, n := range w.sim.PerPEBusWords() {
			s.perPEBus[pe] += n
		}
		for pe, n := range w.sim.PerPERefs() {
			s.perPERefs[pe] += n
		}
	}
}

// Stats returns the merged statistics; Close first.
func (s *Sharded) Stats() Stats {
	s.mustBeClosed("Stats")
	return s.stats
}

// PerPEBusWords returns merged bus words attributed to each PE.
func (s *Sharded) PerPEBusWords() []int64 {
	s.mustBeClosed("PerPEBusWords")
	return s.perPEBus
}

// PerPERefs returns merged references issued by each PE.
func (s *Sharded) PerPERefs() []int64 {
	s.mustBeClosed("PerPERefs")
	return s.perPERefs
}

func (s *Sharded) mustBeClosed(what string) {
	if !s.closed {
		panic(fmt.Sprintf("cache: Sharded.%s before Close (worker stats are racy until drained)", what))
	}
}

// add folds b into a field by field. Every Stats field is an int64
// event count, so the fold is exact and order-independent; the
// sharded-vs-sequential equality tests catch any field added here
// without a matching line.
func (a *Stats) add(b Stats) {
	a.Refs += b.Refs
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.ReadMisses += b.ReadMisses
	a.WriteMisses += b.WriteMisses
	a.BusWords += b.BusWords
	a.LineFills += b.LineFills
	a.WriteBacks += b.WriteBacks
	a.WriteThroughs += b.WriteThroughs
	a.Updates += b.Updates
	a.Invalidations += b.Invalidations
}

package cache

// snoopDir is the simulator-wide snoop directory: for every line
// resident in at least one cache it records a presence bitmask of the
// holding PEs. Coherency actions (invalidateOthers, updateOthers, the
// coherent-fetch snoop-and-demote sweep) consult the mask and then
// visit only the actual holders, replacing the O(PEs) per-snoop scan of
// every cache with a popcount plus targeted lookups.
//
// The directory is an acceleration structure, not ground truth: the
// per-PE stores still hold the resident lines and their states, and the
// Sim keeps the directory exactly in sync on every insert, eviction and
// invalidation. It is keyed by line through the same open-addressing
// scheme as the flat stores (power of two, linear probing, backshift
// deletion) and sized once at construction for the worst case of every
// cache full, so it never allocates during simulation. Each slot
// interleaves the line key with its presence mask — one probe touches
// one cache line — and a zero mask marks the slot empty; entries are
// deleted the moment their last holder drops the line.
type snoopDir struct {
	table []dirSlot
	mask  uint32 // table size - 1
}

// dirSlot is one open-addressing slot: the line key and the presence
// bitmask of the PEs holding it (0 = slot empty).
type dirSlot struct {
	line int32
	_    uint32 // padding: keeps slots 16 bytes, aligned loads
	mask uint64
}

// maxDirPEs is the presence-bitmask width; Config.Validate rejects
// machines with more PEs.
const maxDirPEs = 64

func newSnoopDir(pes, linesPerCache int) *snoopDir {
	size := tableSizeFor(pes * linesPerCache)
	return &snoopDir{
		table: make([]dirSlot, size),
		mask:  size - 1,
	}
}

// find returns the table slot index for line, or -1 if no cache holds
// it.
func (d *snoopDir) find(line int32) int32 {
	table := d.table
	if len(table) == 0 {
		return -1
	}
	mask := uint32(len(table) - 1)
	i := hashLine(line) & mask
	for {
		s := table[i]
		if s.line == line && s.mask != 0 {
			return int32(i)
		}
		if s.mask == 0 {
			return -1
		}
		i = (i + 1) & mask
	}
}

// holders returns the presence bitmask for line (0 if uncached).
func (d *snoopDir) holders(line int32) uint64 {
	if i := d.find(line); i >= 0 {
		return d.table[i].mask
	}
	return 0
}

// holdersAt returns the presence bitmask stored at slot i.
func (d *snoopDir) holdersAt(i int32) uint64 { return d.table[i].mask }

// add records that pe now holds line.
func (d *snoopDir) add(pe int, line int32) {
	i := hashLine(line) & d.mask
	for {
		s := &d.table[i]
		if s.mask == 0 {
			s.line = line
			s.mask = 1 << uint(pe)
			return
		}
		if s.line == line {
			s.mask |= 1 << uint(pe)
			return
		}
		i = (i + 1) & d.mask
	}
}

// remove records that pe dropped line, deleting the entry when the last
// holder goes.
func (d *snoopDir) remove(pe int, line int32) {
	i := d.find(line)
	if i < 0 {
		return
	}
	d.table[i].mask &^= 1 << uint(pe)
	if d.table[i].mask == 0 {
		d.delete(uint32(i))
	}
}

// keepOnlyAt clears every holder bit at slot i except pe's (the bulk
// form used by invalidateOthers: the caller already found the slot).
func (d *snoopDir) keepOnlyAt(i int32, pe int) {
	d.table[i].mask &= 1 << uint(pe)
	if d.table[i].mask == 0 {
		d.delete(uint32(i))
	}
}

// delete empties slot i with backshift deletion (tombstone-free).
func (d *snoopDir) delete(i uint32) {
	for {
		d.table[i] = dirSlot{}
		j := i
		for {
			j = (j + 1) & d.mask
			s := d.table[j]
			if s.mask == 0 {
				return
			}
			k := hashLine(s.line) & d.mask
			if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
				d.table[i] = s
				i = j
				break
			}
		}
	}
}

// parallel-speedup reproduces a Figure 2 style study on a user program:
// RAP-WAM work (as a percentage of sequential WAM work), speedup and
// wait/idle shares as the processor count grows.
package main

import (
	"fmt"
	"log"

	"repro"
)

// A map-colouring-ish workload: solve several independent N-queens
// boards in parallel (queens is all-or-nothing sequential inside, so
// parallelism comes from the independent boards — medium granularity,
// like the applications the paper's introduction motivates).
const program = `
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
	sel(Unplaced, Rest, Q),
	ok(Safe, Q, 1),
	place(Rest, [Q|Safe], Qs).
ok([], _, _).
ok([Y|Ys], Q, N) :-
	Q =\= Y + N, Q =\= Y - N,
	N1 is N + 1, ok(Ys, Q, N1).
sel([X|Xs], Xs, X).
sel([Y|Ys], [Y|Zs], X) :- sel(Ys, Zs, X).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).

% Four independent boards of comparable cost, solved in AND-parallel
% (a single four-goal CGE).
boards(A, B, C, D) :-
	queens(8, A) & queens(8, B) & queens(7, C) & queens(7, D).
`

func main() {
	prog, err := rapwam.Compile(program, "boards(A, B, C, D)")
	if err != nil {
		log.Fatal(err)
	}
	base, err := rapwam.CompileWithOptions(program, "boards(A, B, C, D)",
		rapwam.CompileOptions{Sequential: true})
	if err != nil {
		log.Fatal(err)
	}
	wam, err := base.Run(rapwam.RunConfig{PEs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WAM baseline: %d cycles, %d work refs\n\n", wam.Stats.Cycles, wam.Stats.TotalWorkRefs())
	fmt.Printf("%5s  %10s  %8s  %7s  %7s\n", "#PEs", "work %WAM", "speedup", "wait%", "idle%")

	for _, pes := range []int{1, 2, 3, 4, 6, 8} {
		res, err := prog.Run(rapwam.RunConfig{PEs: pes})
		if err != nil {
			log.Fatal(err)
		}
		var waits, idles int64
		for i := range res.Stats.WaitCycles {
			waits += res.Stats.WaitCycles[i]
			idles += res.Stats.IdleCycles[i]
		}
		machine := res.Stats.Cycles * int64(pes)
		fmt.Printf("%5d  %9.1f%%  %7.2fx  %6.1f%%  %6.1f%%\n",
			pes,
			100*float64(res.Stats.TotalWorkRefs())/float64(wam.Stats.TotalWorkRefs()),
			float64(wam.Stats.Cycles)/float64(res.Stats.Cycles),
			100*float64(waits)/float64(machine),
			100*float64(idles)/float64(machine))
	}
	fmt.Println("\n(The work curve staying near 100% is the paper's low-overhead claim;")
	fmt.Println(" wait/idle shares growing with PEs shows the parallelism limit of the program.)")
}

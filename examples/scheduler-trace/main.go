// scheduler-trace visualizes RAP-WAM's on-demand scheduling: which PE
// executed how much work, how goals flowed through the goal stacks, and
// how the Table 1 storage classes were exercised.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const program = `
% An irregular parallel tree: node costs differ wildly, so goal
% stealing has to balance the load.
cost(0, 1).
cost(N, C) :- N > 0, M is N - 1, cost(M, C1), C is C1 + 1.

tree(0, 1).
tree(D, N) :- D > 0, D1 is D - 1, W is D * 40,
	(tree(D1, A) & tree(D1, B)),
	cost(W, _),
	N is A + B.
`

func main() {
	prog, err := rapwam.Compile(program, "tree(7, N)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(rapwam.RunConfig{PEs: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree(7) = %s leaves\n\n", res.Bindings["N"])
	fmt.Printf("parcalls: %d   goals in parallel: %d   stolen: %d   steal probes: %d\n\n",
		res.Stats.Parcalls, res.Stats.GoalsParallel, res.Stats.GoalsStolen, res.Stats.StealProbes)

	fmt.Println("per-PE activity (cycles):")
	total := res.Stats.Cycles
	for pe := range res.Stats.WorkRefs {
		run := res.Stats.RunCycles[pe]
		wait := res.Stats.WaitCycles[pe]
		idle := res.Stats.IdleCycles[pe]
		bar := func(n int64) string {
			w := int(40 * n / total)
			return strings.Repeat("#", w)
		}
		fmt.Printf("  pe%-2d run %6d %-40s\n", pe, run, bar(run))
		fmt.Printf("       wait%6d %-40s\n", wait, bar(wait))
		fmt.Printf("       idle%6d %-40s\n", idle, bar(idle))
	}

	fmt.Println("\nreference classification (paper Table 1):")
	for obj, ops := range enumerateObjs(res) {
		fmt.Printf("  %-16s reads %8d  writes %8d\n", obj, ops[0], ops[1])
	}
}

// enumerateObjs flattens the by-object counter into a printable map.
func enumerateObjs(res *rapwam.Result) map[string][2]int64 {
	out := map[string][2]int64{}
	for obj, ops := range res.Refs.ByObj {
		if ops[0]+ops[1] == 0 {
			continue
		}
		name := fmt.Sprint(objName(obj))
		out[name] = [2]int64{ops[0], ops[1]}
	}
	return out
}

func objName(i int) string {
	// trace.ObjType strings, indexed positionally.
	names := []string{"none", "envt/control", "envt/pvars", "choicepoint",
		"heap", "trail", "pdl", "parcall/local", "parcall/global",
		"parcall/counts", "marker", "goalframe", "message"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("obj%d", i)
}

// Quickstart: compile an &-Prolog program, run it on 1 and 8 processing
// elements, and look at the answer, the speedup and the memory behaviour.
package main

import (
	"fmt"
	"log"

	"repro"
)

const program = `
% Parallel Fibonacci: the two recursive calls are independent (their
% arguments are ground), so they form an unconditional CGE.
fib(0, 0).
fib(1, 1).
fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,
	(fib(N1, F1) & fib(N2, F2)),
	F is F1 + F2.
`

func main() {
	prog, err := rapwam.Compile(program, "fib(17, F)")
	if err != nil {
		log.Fatal(err)
	}

	seq, err := prog.Run(rapwam.RunConfig{PEs: 1})
	if err != nil {
		log.Fatal(err)
	}
	par, err := prog.Run(rapwam.RunConfig{PEs: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fib(17) = %s\n\n", par.Bindings["F"])
	fmt.Printf("1 PE : %8d cycles, %8d work references\n",
		seq.Stats.Cycles, seq.Stats.TotalWorkRefs())
	fmt.Printf("8 PEs: %8d cycles, %8d work references, %d goals in parallel (%d stolen)\n",
		par.Stats.Cycles, par.Stats.TotalWorkRefs(),
		par.Stats.GoalsParallel, par.Stats.GoalsStolen)
	fmt.Printf("speedup: %.2fx\n\n", float64(seq.Stats.Cycles)/float64(par.Stats.Cycles))

	fmt.Printf("reference mix at 8 PEs (paper Table 1 classification):\n")
	byArea := par.Refs.ByArea()
	for area, n := range byArea {
		if n > 0 {
			fmt.Printf("  %-8s %8d\n", rapwam.Area(area), n)
		}
	}
	fmt.Printf("global (shared) share: %.1f%%\n", 100*par.Refs.GlobalShare())
}

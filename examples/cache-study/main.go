// cache-study reproduces a Figure 4 style protocol comparison on one
// workload: trace a parallel run once, then replay the trace through
// the coherency protocols across cache sizes.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	bm, ok := rapwam.BenchmarkByName("qsort")
	if !ok {
		log.Fatal("qsort benchmark missing")
	}
	const pes = 4
	tr, err := rapwam.TraceBenchmark(context.Background(), bm, pes, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qsort at %d PEs: %d memory references traced\n\n", pes, tr.Len())

	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	protocols := []struct {
		name  string
		proto rapwam.Protocol
	}{
		{"write-in broadcast", rapwam.WriteInBroadcast},
		{"hybrid (tag-driven)", rapwam.Hybrid},
		{"write-through", rapwam.WriteThrough},
	}

	fmt.Printf("%-20s", "traffic ratio")
	for _, s := range sizes {
		fmt.Printf(" %6dw", s)
	}
	fmt.Println()
	for _, p := range protocols {
		fmt.Printf("%-20s", p.name)
		for _, s := range sizes {
			st, err := rapwam.SimulateCache(tr, rapwam.CacheConfig{
				PEs: pes, SizeWords: s, LineWords: 4,
				Protocol:      p.proto,
				WriteAllocate: rapwam.PaperWriteAllocate(p.proto, s),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.3f", st.TrafficRatio())
		}
		fmt.Println()
	}

	fmt.Println("\nThe paper's Figure 4 ordering: broadcast lowest, hybrid close behind,")
	fmt.Println("conventional write-through flat and high (every write goes to the bus).")

	// Bus feasibility at the chosen design point.
	st, err := rapwam.SimulateCache(tr, rapwam.CacheConfig{
		PEs: pes, SizeWords: 512, LineWords: 4,
		Protocol:      rapwam.WriteInBroadcast,
		WriteAllocate: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := rapwam.BusAnalytic(rapwam.BusParams{
		PEs: pes, RefsPerCycle: 1,
		TrafficRatio:     st.TrafficRatio(),
		BusWordsPerCycle: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith 512-word broadcast caches and a 2-word/cycle bus: utilization %.0f%%, efficiency %.0f%%\n",
		100*r.Utilization, 100*r.Efficiency)
}

// meta-interpreter runs the classic Prolog vanilla meta-interpreter on
// the RAP-WAM engine: object programs are represented as clause/2 facts
// and solved by solve/1 using structure inspection (=..) and meta-call.
// This exercises the engine's reflective builtins and shows that the
// reproduction is a usable Prolog system, not just a benchmark harness.
package main

import (
	"fmt"
	"log"

	"repro"
)

const program = `
% Object program, reified as clause(Head, Body) facts.
clause(app([], L, L), true).
clause(app([H|T], L, [H|R]), app(T, L, R)).
clause(rev([], []), true).
clause(rev([H|T], R), (rev(T, RT), app(RT, [H], R))).
clause(member(X, [X|_]), true).
clause(member(X, [_|T]), member(X, T)).

% Vanilla meta-interpreter.
solve(true) :- !.
solve((A, B)) :- !, solve(A), solve(B).
solve(G) :- clause(G, B), solve(B).
`

func main() {
	prog, err := rapwam.Compile(program, "solve(rev([1,2,3,4,5], R))")
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(rapwam.RunConfig{PEs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solve(rev([1,2,3,4,5], R)):")
	fmt.Println("  R =", res.Bindings["R"])
	fmt.Printf("  %d instructions, %d inferences, %d memory references\n",
		res.Stats.TotalInstructions(), res.Stats.Inferences, res.Stats.TotalWorkRefs())

	// The meta-interpretation overhead: the same query run natively.
	native, err := rapwam.Compile(`
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
		rev([], []).
		rev([H|T], R) :- rev(T, RT), app(RT, [H], R).
	`, "rev([1,2,3,4,5], R)")
	if err != nil {
		log.Fatal(err)
	}
	nres, err := native.Run(rapwam.RunConfig{PEs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnative rev([1,2,3,4,5], R):")
	fmt.Println("  R =", nres.Bindings["R"])
	fmt.Printf("  %d instructions, %d inferences, %d memory references\n",
		nres.Stats.TotalInstructions(), nres.Stats.Inferences, nres.Stats.TotalWorkRefs())
	fmt.Printf("\nmeta-interpretation overhead: %.1fx instructions\n",
		float64(res.Stats.TotalInstructions())/float64(nres.Stats.TotalInstructions()))
}

#!/bin/sh
# check_links.sh — verify that every relative markdown link in the
# repo's published documentation (README, docs/, examples/) resolves
# to an existing file. External links (http/https) and pure anchors
# are skipped; no network access needed. Working-notes files carried
# over from external sources (SNIPPETS.md, PAPERS.md, ...) are out of
# scope.
#
# Usage: scripts/check_links.sh   (from the repo root)
set -eu

fail=0
for md in README.md docs/*.md examples/*/README.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # Extract (target) parts of [text](target) links, one per line.
    grep -o '\[[^]]*\]([^)]*)' "$md" 2>/dev/null | sed 's/.*(\(.*\))/\1/' |
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Strip a trailing anchor.
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link in $md: $target" >&2
            echo broken > /tmp/check_links_failed.$$
        fi
    done
    if [ -f /tmp/check_links_failed.$$ ]; then
        rm -f /tmp/check_links_failed.$$
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check_links.sh: broken links found" >&2
    exit 1
fi
echo "check_links.sh: all relative markdown links resolve"

#!/bin/sh
# check_coverage.sh — enforce the statement-coverage floor on the
# storage and service layers (the fault-tolerance and cluster-tier
# core: regressions there are exactly the ones the chaos tests exist
# to catch). Reads a coverage profile produced by
#
#	go test -coverprofile=coverage.out ./internal/...
#
# and fails if combined statement coverage over internal/storage plus
# internal/service falls below the floor.
#
# Usage: scripts/check_coverage.sh [coverage.out [floor-pct]]
#   COVER_FLOOR=N  alternative way to set the floor (default 80,
#   a few points under the ~84% measured when the gate was added)
set -eu

prof="${1:-coverage.out}"
floor="${2:-${COVER_FLOOR:-80}}"

[ -f "$prof" ] || { echo "check_coverage.sh: $prof not found (run: go test -coverprofile=$prof ./internal/...)" >&2; exit 1; }

awk -v floor="$floor" '
NR == 1 { next }  # mode: line
/^repro\/internal\/storage\/storagetest\// { next }  # test harness, exercised from storage tests
/^repro\/internal\/(storage|service)\// {
    total += $(NF - 1)
    if ($NF > 0) covered += $(NF - 1)
}
END {
    if (total == 0) {
        print "check_coverage.sh: no internal/storage or internal/service statements in profile" > "/dev/stderr"
        exit 1
    }
    pct = 100 * covered / total
    printf "storage+service statement coverage: %.1f%% (floor %s%%)\n", pct, floor
    if (pct < floor) {
        printf "check_coverage.sh: coverage %.1f%% is below the %s%% floor\n", pct, floor > "/dev/stderr"
        exit 1
    }
}
' "$prof"

#!/bin/sh
# bench_service.sh — run the serving-layer benchmarks (warm-cache
# requests/s and p50/p99 latency over real HTTP, sequential and
# parallel clients) and record the result as BENCH_service.json, so the
# results daemon's performance trajectory is captured per PR next to
# the kernel and emulator numbers.
#
# Usage: scripts/bench_service.sh [output.json]
#   BENCH_COUNT=N   repetitions per benchmark (default 1)
#   BENCH_FILTER=RE benchmarks to run (default the service suite)
set -eu

out="${1:-BENCH_service.json}"
count="${BENCH_COUNT:-1}"
filter="${BENCH_FILTER:-BenchmarkServiceWarm}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$filter" -benchmem -count "$count" ./internal/service > "$tmp" || {
    status=$?
    cat "$tmp"
    echo "bench_service.sh: go test -bench failed" >&2
    exit "$status"
}
cat "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { printf "[" }
$1 ~ /^Benchmark/ {
    if (n++) printf ","
    printf "\n  {\"name\":\"%s\",\"iterations\":%s", $1, $2
    # remaining fields come in value/unit pairs (ns/op, req/s, p50-ns, ...)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        printf ",\"%s\":%s", unit, $i
    }
    printf ",\"go\":\"%s\"}", goversion
}
END { printf "\n]\n" }
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"

#!/bin/sh
# bench_cluster.sh — run the cluster-tier benchmarks (warm local-disk
# hit vs warm peer-fetch vs cold-compute proxy hop, each a full HTTP
# request against an in-process two-node fleet) and record the result
# as BENCH_cluster.json, so the cluster read path's three price points
# are captured per PR next to the serving-layer numbers.
#
# Usage: scripts/bench_cluster.sh [output.json]
#   BENCH_COUNT=N   repetitions per benchmark (default 1)
#   BENCH_FILTER=RE benchmarks to run (default the cluster suite)
set -eu

out="${1:-BENCH_cluster.json}"
count="${BENCH_COUNT:-1}"
filter="${BENCH_FILTER:-BenchmarkCluster}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$filter" -benchmem -count "$count" ./internal/service > "$tmp" || {
    status=$?
    cat "$tmp"
    echo "bench_cluster.sh: go test -bench failed" >&2
    exit "$status"
}
cat "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { printf "[" }
$1 ~ /^Benchmark/ {
    if (n++) printf ","
    printf "\n  {\"name\":\"%s\",\"iterations\":%s", $1, $2
    # remaining fields come in value/unit pairs (ns/op, B/op, ...)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        printf ",\"%s\":%s", unit, $i
    }
    printf ",\"go\":\"%s\"}", goversion
}
END { printf "\n]\n" }
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"

#!/bin/sh
# bench_engine.sh — run the emulator benchmarks (bare engine and cold
# trace generation, refs/s and MLIPS on deriv+qsort at 1/4/8 PEs, the
# sharded dispatcher at 1/2/4 execution shards on the 8-PE cells, plus
# the steady-state reference-path allocation check) and record the
# result as BENCH_engine.json, so the emulator's performance trajectory
# is captured per PR next to the cache-replay numbers.
#
# Usage: scripts/bench_engine.sh [output.json]
#   BENCH_COUNT=N   repetitions per benchmark (default 1)
#   BENCH_FILTER=RE benchmarks to run (default the engine suite)
set -eu

out="${1:-BENCH_engine.json}"
count="${BENCH_COUNT:-1}"
# (BenchmarkTraceGeneration is anchored: the TraceGenerationWorkers
# scaling benchmark belongs to scripts/bench_replay.sh.)
filter="${BENCH_FILTER:-BenchmarkEngineRun|BenchmarkTraceGeneration$}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

{
    go test -run '^$' -bench "$filter" -benchmem -count "$count" ./internal/bench
    go test -run '^$' -bench 'BenchmarkMemoryRefPath' -benchmem -count "$count" ./internal/mem
} > "$tmp" || {
    status=$?
    cat "$tmp"
    echo "bench_engine.sh: go test -bench failed" >&2
    exit "$status"
}
cat "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { printf "[" }
$1 ~ /^Benchmark/ {
    if (n++) printf ","
    printf "\n  {\"name\":\"%s\",\"iterations\":%s", $1, $2
    # remaining fields come in value/unit pairs (ns/op, refs/s, MLIPS, B/op, allocs/op, ...)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        printf ",\"%s\":%s", unit, $i
    }
    printf ",\"go\":\"%s\"}", goversion
}
END { printf "\n]\n" }
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"

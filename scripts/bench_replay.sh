#!/bin/sh
# bench_replay.sh — run the intra-cell parallelism benchmarks
# (set-sharded cache replay at 1/2/4/8 shards, and pipelined trace
# generation at 1/2/4 encode workers) and record the result as
# BENCH_replay.json, so the deterministic-parallelism speedups are
# captured per PR next to the engine and cache numbers. Both paths are
# bit-identical to their sequential counterparts at every worker
# count, so these numbers are pure wall-clock, not accuracy trades.
#
# Usage: scripts/bench_replay.sh [output.json]
#   BENCH_COUNT=N   repetitions per benchmark (default 1)
#   BENCH_FILTER=RE benchmarks to run (default the replay suite)
set -eu

out="${1:-BENCH_replay.json}"
count="${BENCH_COUNT:-1}"
filter="${BENCH_FILTER:-BenchmarkShardedReplay|BenchmarkTraceGenerationWorkers}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

{
    go test -run '^$' -bench "$filter" -benchmem -count "$count" ./internal/cache
    go test -run '^$' -bench "$filter" -benchmem -count "$count" ./internal/bench
} > "$tmp" || {
    status=$?
    cat "$tmp"
    echo "bench_replay.sh: go test -bench failed" >&2
    exit "$status"
}
cat "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { printf "[" }
$1 ~ /^Benchmark/ {
    if (n++) printf ","
    printf "\n  {\"name\":\"%s\",\"iterations\":%s", $1, $2
    # remaining fields come in value/unit pairs (ns/op, MB/s, refs/s, B/op, allocs/op, ...)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        printf ",\"%s\":%s", unit, $i
    }
    printf ",\"go\":\"%s\"}", goversion
}
END { printf "\n]\n" }
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"

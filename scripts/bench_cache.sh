#!/bin/sh
# bench_cache.sh — run the cache-replay and trace-codec benchmarks and
# record the result as BENCH_cache.json, so the performance trajectory
# of the hot paths (simrefs/s, trace encode/decode refs/s, allocs/op)
# is captured per PR.
#
# Usage: scripts/bench_cache.sh [output.json]
#   BENCH_COUNT=N   repetitions per benchmark (default 1)
#   BENCH_FILTER=RE benchmarks to run (default the replay pipeline +
#                   trace codec set)
set -eu

out="${1:-BENCH_cache.json}"
count="${BENCH_COUNT:-1}"
filter="${BENCH_FILTER:-BenchmarkReplaySequential|BenchmarkReplayFanOut|BenchmarkReplaySteadyState|BenchmarkCacheSimThroughput|BenchmarkTraceEncode|BenchmarkTraceDecode}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$filter" -benchmem -count "$count" . > "$tmp" || {
    status=$?
    cat "$tmp"
    echo "bench_cache.sh: go test -bench failed" >&2
    exit "$status"
}
cat "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" '
BEGIN { printf "[" }
$1 ~ /^Benchmark/ {
    if (n++) printf ","
    printf "\n  {\"name\":\"%s\",\"iterations\":%s", $1, $2
    # remaining fields come in value/unit pairs (ns/op, simrefs/s, B/op, allocs/op, ...)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]+/, "_", unit)
        printf ",\"%s\":%s", unit, $i
    }
    printf ",\"go\":\"%s\"}", goversion
}
END { printf "\n]\n" }
' "$tmp" > "$out"

echo "wrote $out:"
cat "$out"

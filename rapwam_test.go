package rapwam

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestQuickStart(t *testing.T) {
	prog := MustCompile(`
		fib(0, 0).
		fib(1, 1).
		fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,
			(fib(N1, F1) & fib(N2, F2)),
			F is F1 + F2.
	`, "fib(15, F)")
	if !prog.Parallel() {
		t.Error("program should be parallel")
	}
	res, err := prog.Run(RunConfig{PEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bindings["F"] != "610" {
		t.Errorf("F = %s", res.Bindings["F"])
	}
	if res.Stats.GoalsParallel == 0 {
		t.Error("no parallelism observed")
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := Compile("p :-", "p"); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := Compile("p.", "q"); err == nil {
		t.Error("undefined query goal not reported")
	}
}

func TestSequentialOption(t *testing.T) {
	prog, err := CompileWithOptions("p(X) :- q(X) & r(X). q(1). r(1).", "p(A)",
		CompileOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Parallel() {
		t.Error("sequential compile should not be parallel")
	}
	res, err := prog.Run(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bindings["A"] != "1" {
		t.Errorf("A = %s", res.Bindings["A"])
	}
}

func TestTraceCaptureAndCacheSim(t *testing.T) {
	prog := MustCompile(`
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`, "app([1,2,3,4,5], [6,7,8], X)")
	res, err := prog.Run(RunConfig{CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no trace captured")
	}
	st, err := SimulateCache(res.Trace, CacheConfig{
		PEs: 1, SizeWords: 256, LineWords: 4, Protocol: Copyback, WriteAllocate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Refs != int64(res.Trace.Len()) {
		t.Errorf("cache saw %d refs, trace has %d", st.Refs, res.Trace.Len())
	}
	if st.TrafficRatio() <= 0 || st.TrafficRatio() > 2 {
		t.Errorf("traffic ratio = %v", st.TrafficRatio())
	}
}

func TestStreamingSinkMatchesCapturedTrace(t *testing.T) {
	// Streaming a run directly into a cache simulator (no trace buffer)
	// must match capturing the trace and replaying it afterwards.
	src := `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
	`
	cfg := CacheConfig{
		PEs: 1, SizeWords: 256, LineWords: 4, Protocol: Copyback, WriteAllocate: true,
	}
	live, err := NewCacheSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MustCompile(src, "app([1,2,3,4,5], [6,7,8], X)").
		Run(RunConfig{CaptureTrace: true, Sink: live})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no trace captured alongside the stream")
	}
	replayed, err := SimulateCache(res.Trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live.Stats() != replayed {
		t.Errorf("streamed stats %+v != replayed stats %+v", live.Stats(), replayed)
	}
}

func TestTraceReplayAllMatchesSimulateCache(t *testing.T) {
	bm, ok := BenchmarkByName("deriv")
	if !ok {
		t.Fatal("deriv missing")
	}
	tr, err := TraceBenchmark(context.Background(), bm, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := replayBenchConfigs(2)
	all, err := tr.ReplayAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		one, err := SimulateCache(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if all[i] != one {
			t.Errorf("config %d: ReplayAll %+v != SimulateCache %+v", i, all[i], one)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	prog := MustCompile("p(1).", "p(X)")
	res, err := prog.Run(RunConfig{CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := res.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Trace.Len() {
		t.Errorf("round trip: %d != %d", back.Len(), res.Trace.Len())
	}
}

func TestBenchmarkAccessors(t *testing.T) {
	if len(PaperBenchmarks()) != 4 {
		t.Error("want 4 paper benchmarks")
	}
	if len(LargeBenchmarks()) != 4 {
		t.Error("want 4 large benchmarks")
	}
	b, ok := BenchmarkByName("tak")
	if !ok {
		t.Fatal("tak missing")
	}
	res, err := RunBenchmark(context.Background(), b, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Error("tak failed")
	}
	tr, err := TraceBenchmark(context.Background(), b, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Error("empty benchmark trace")
	}
}

func TestTable1Exported(t *testing.T) {
	if !strings.Contains(Table1(), "parcall/counts") {
		t.Error("Table1 incomplete")
	}
}

func TestBusAnalyticExported(t *testing.T) {
	r, err := BusAnalytic(BusParams{PEs: 8, RefsPerCycle: 1, TrafficRatio: 0.1, BusWordsPerCycle: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency <= 0 || r.Efficiency > 1 {
		t.Errorf("efficiency = %v", r.Efficiency)
	}
	n, err := BusMaxPEs(BusParams{PEs: 1, RefsPerCycle: 1, TrafficRatio: 0.1, BusWordsPerCycle: 4}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Errorf("MaxPEs = %d", n)
	}
}

func TestPaperWriteAllocateExported(t *testing.T) {
	if PaperWriteAllocate(WriteInBroadcast, 64) {
		t.Error("64-word caches are no-write-allocate")
	}
	if !PaperWriteAllocate(WriteInBroadcast, 1024) {
		t.Error("1024-word caches are write-allocate")
	}
}

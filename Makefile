# Developer entry points; CI runs the same targets.

GO ?= go

# Third-party scanners are pinned here (not in go.mod: a tools.go
# dependency would put them on the module graph and break hermetic
# offline builds). `make audit` installs-and-runs them by version, so
# CI and developers resolve identical binaries.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# Per-target budget for `make fuzz` (two targets run back to back).
FUZZTIME ?= 30s

.PHONY: all check build test race lint audit fuzz bench bench-engine bench-replay bench-service bench-cluster cover fmt vet docs

all: build test

# check is the full pre-push gate: everything CI's required jobs run.
check: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the repo-invariant gate: formatting, go vet, then the
# rapwamlint analyzer suite (internal/lint, cmd/rapwamlint) —
# determinism, errortaxonomy, hotpath, ctxfirst, versionbump, and the
# //rapwam:allow annotation audit. Uses only the Go toolchain, so it
# runs identically offline.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/rapwamlint ./...

# audit layers the pinned third-party scanners on top of lint. Both
# resolve their module by version at run time, so the target needs
# network access the first time — which is why it is separate from
# lint and optional outside CI.
audit:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# fuzz exercises the two hostile-input surfaces: the compact trace
# decoder and the fault-spec parser. Seeds live in each package's
# testdata/fuzz corpus; new findings land there too.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzChunkReader -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzParseFaults -fuzztime $(FUZZTIME) ./internal/storage/

# race covers every concurrent subsystem; internal/core and
# internal/mem run their sharded-execution suites (ExecShards > 1)
# under the detector here, which is what keeps the speculative
# dispatcher's cross-goroutine memory accesses honest.
race:
	$(GO) test -race ./internal/core/ ./internal/mem/ ./internal/trace/ ./internal/cache/ ./internal/experiments/ ./internal/tracestore/ ./internal/bench/ ./internal/service/ ./internal/storage/

# bench runs the cache-replay benchmarks with -benchmem and records the
# result in BENCH_cache.json (simrefs/s, allocs/op) so the simulator's
# perf trajectory is tracked per PR. BENCH_COUNT=5 for quieter numbers.
bench:
	sh scripts/bench_cache.sh BENCH_cache.json

# bench-engine runs the emulator benchmarks (bare engine + cold trace
# generation, refs/s and MLIPS) and records BENCH_engine.json.
bench-engine:
	sh scripts/bench_engine.sh BENCH_engine.json

# bench-replay runs the intra-cell parallelism benchmarks (set-sharded
# cache replay vs shard count, pipelined trace generation vs encode
# workers — both bit-identical to sequential) and records
# BENCH_replay.json.
bench-replay:
	sh scripts/bench_replay.sh BENCH_replay.json

# bench-service runs the serving-layer benchmarks (warm-cache req/s and
# p50/p99 latency over real HTTP) and records BENCH_service.json.
bench-service:
	sh scripts/bench_service.sh BENCH_service.json

# bench-cluster runs the cluster-tier benchmarks (warm local hit vs
# warm peer-fetch vs cold-compute proxy hop over an in-process
# two-node fleet) and records BENCH_cluster.json.
bench-cluster:
	sh scripts/bench_cluster.sh BENCH_cluster.json

# cover collects statement coverage across internal packages and
# enforces the storage+service floor (scripts/check_coverage.sh).
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	sh scripts/check_coverage.sh coverage.out

# docs checks the published markdown (broken relative links) and runs
# the committed Example functions.
docs:
	sh scripts/check_links.sh
	$(GO) test -run 'Example' . ./internal/cache/

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

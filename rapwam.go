// Package rapwam is a Go reproduction of the system studied in
// "Memory Performance of AND-parallel Prolog on Shared-Memory
// Architectures" (Hermenegildo & Tick, ICPP 1988): the RAP-WAM
// AND-parallel Prolog abstract machine, its memory-reference
// instrumentation, and the trace-driven multiprocessor cache simulator
// used to compare coherency protocols.
//
// The package compiles &-Prolog programs (Prolog plus Conditional Graph
// Expressions such as "(ground(X) | p(X) & q(X))") to RAP-WAM code,
// executes them on a configurable number of abstract machines sharing
// one flat memory, captures word-level memory traces classified per the
// paper's Table 1, and replays those traces through coherent cache
// models (conventional write-through, write-in broadcast, write-through
// broadcast, the paper's hybrid scheme, and plain copyback).
//
// Quick start:
//
//	prog, err := rapwam.Compile(`
//	    fib(0, 0).
//	    fib(1, 1).
//	    fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,
//	        (fib(N1, F1) & fib(N2, F2)),
//	        F is F1 + F2.
//	`, "fib(15, F)")
//	if err != nil { ... }
//	res, err := prog.Run(rapwam.RunConfig{PEs: 8})
//	fmt.Println(res.Bindings["F"], res.Stats.Cycles)
//
// The experiment drivers that regenerate every table and figure of the
// paper live behind the Figure2, Table2, Table3, Figure4, MLIPS and
// BusStudy functions; `go test -bench .` runs them all.
//
// # Persistent traces
//
// Traces are pure functions of (benchmark, PEs, sequential, emulator
// version), so they persist: SetTraceDir attaches a content-addressed
// store of compact binary traces (docs/TRACE_FORMAT.md) that the
// experiment drivers and TraceBenchmark consult before running the
// emulator, streaming generation to disk and replay from disk so even
// larger-than-RAM traces flow through the full simulator grid. With a
// warm store a complete experiment sweep performs zero emulator runs
// (EngineRuns is the observable). GenerateTraces warms cells in bulk,
// concurrently; cmd/tracegen is its CLI.
package rapwam

import (
	"context"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// CompileOptions control translation.
type CompileOptions struct {
	// Sequential compiles CGEs to ordinary conjunctions, producing the
	// plain-WAM baseline the paper measures against.
	Sequential bool
}

// Program is a compiled &-Prolog program plus query.
type Program struct {
	code *isa.Code
}

// Compile translates a program and a query (the goal text, without
// "?-") into RAP-WAM code.
func Compile(program, query string) (*Program, error) {
	return CompileWithOptions(program, query, CompileOptions{})
}

// CompileWithOptions is Compile with explicit options.
func CompileWithOptions(program, query string, opt CompileOptions) (*Program, error) {
	code, err := compile.Compile(program, query, compile.Options{Sequential: opt.Sequential})
	if err != nil {
		return nil, err
	}
	return &Program{code: code}, nil
}

// MustCompile is Compile that panics on error (for examples and tests).
func MustCompile(program, query string) *Program {
	p, err := Compile(program, query)
	if err != nil {
		panic(err)
	}
	return p
}

// Listing returns the compiled instruction listing (for inspection).
func (p *Program) Listing() string { return p.code.Listing() }

// Parallel reports whether the program contains CGEs.
func (p *Program) Parallel() bool { return p.code.Parallel }

// MachineStats re-exports the engine's instrumentation summary.
type MachineStats = core.Stats

// RefCounter re-exports the by-object-type reference counter.
type RefCounter = trace.Counter

// Area re-exports the RAP-WAM storage-area identifier; it indexes
// RefCounter.ByArea's result and renders its lowercase name via
// String.
type Area = trace.Area

// NumAreas re-exports the number of distinct storage areas (the length
// of RefCounter.ByArea's result, AreaNone included at index 0).
const NumAreas = trace.NumAreas

// MaxPEs re-exports the largest PE count the reference-level tooling
// supports; engine runs, trace cells and cache simulations all reject
// larger values, and CLIs validate their -pes/-maxpes flags against it
// at the flag boundary.
const MaxPEs = trace.MaxPEs

// Ref re-exports a single memory reference (one word read or written
// by one PE, classified per the paper's Table 1).
type Ref = trace.Ref

// Sink re-exports the trace consumer interface. A Sink receives every
// memory reference in emission order from a single goroutine; cache
// simulators (NewCacheSim), trace buffers and file writers all
// implement it. See internal/trace for the full stream contract.
type Sink = trace.Sink

// RunConfig parameterizes an execution.
type RunConfig struct {
	// PEs is the number of processing elements (workers). Default 1.
	PEs int
	// CaptureTrace records the full memory-reference trace in
	// Result.Trace.
	CaptureTrace bool
	// Sink, when non-nil, receives every memory reference as it is
	// generated — a streaming alternative to CaptureTrace that never
	// buffers the trace (attach a cache simulator from NewCacheSim, a
	// trace.StreamWriter, or any fan-out of sinks). Sink and
	// CaptureTrace compose: with both set the trace is buffered and
	// streamed.
	Sink Sink
	// MaxCycles bounds the simulation (0 = a large default).
	MaxCycles int64
	// HeapWords overrides the per-worker heap size (0 = default);
	// other areas scale with the defaults in internal/mem.
	HeapWords int
	// ExecShards sets how many host goroutines the emulator may use to
	// speculate independent PEs' cycles in parallel (0 or 1 = the
	// serial dispatcher). The emitted trace and every result field are
	// identical at any setting; only wall-clock time changes.
	ExecShards int
}

// Result is the outcome of running a Program.
type Result struct {
	// Success reports whether the query succeeded.
	Success bool
	// Bindings maps query variable names to rendered terms.
	Bindings map[string]string
	// Output holds everything written by write/1 and nl/0.
	Output string
	// Stats is the machine instrumentation (cycles, per-PE work,
	// parallelism counters, storage high-water marks).
	Stats MachineStats
	// Refs counts references by Table 1 object type.
	Refs *RefCounter
	// Trace is the full reference trace when CaptureTrace was set.
	Trace *Trace
}

// Run executes the program's query to its first solution.
func (p *Program) Run(cfg RunConfig) (*Result, error) {
	pes := cfg.PEs
	if pes <= 0 {
		pes = 1
	}
	layout := mem.DefaultLayout(pes)
	if cfg.HeapWords > 0 {
		layout.Heap = cfg.HeapWords
	}
	var buf *trace.Buffer
	var sink trace.Sink
	if cfg.CaptureTrace {
		buf = trace.NewBuffer(1 << 20)
		sink = buf
	}
	if cfg.Sink != nil {
		if sink != nil {
			sink = trace.Tee{sink, cfg.Sink}
		} else {
			sink = cfg.Sink
		}
	}
	eng, err := core.New(p.code, core.Config{
		PEs:        pes,
		Layout:     layout,
		Sink:       sink,
		MaxCycles:  cfg.MaxCycles,
		ExecShards: cfg.ExecShards,
	})
	if err != nil {
		return nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	eng.Close() // result is self-contained; recycle the memory slab
	out := newResult(res)
	if buf != nil {
		out.Trace = &Trace{buf: buf}
	}
	return out, nil
}

// newResult maps the engine's result onto the public type (Trace, when
// captured, is attached by the caller).
func newResult(res *core.Result) *Result {
	return &Result{
		Success:  res.Success,
		Bindings: res.Bindings,
		Output:   res.Output,
		Stats:    res.Stats,
		Refs:     res.Refs,
	}
}

// Benchmark re-exports the paper's benchmark workloads.
type Benchmark = bench.Benchmark

// PaperBenchmarks returns deriv, tak, qsort and matrix — the paper's
// Table 2 suite, with calibrated inputs.
func PaperBenchmarks() []Benchmark { return bench.Paper() }

// LargeBenchmarks returns the sequential locality-reference suite
// (nrev, queens, primes, zebra) used by the Table 3 fit study.
func LargeBenchmarks() []Benchmark { return bench.Large() }

// BenchmarkByName looks a benchmark up by name: every fixed name in
// BenchmarkNames plus the parameterized variants ("deriv-d<N>",
// "deriv-<nodes>", "qsort-<len>", "matrix-<n>", "nrev-<len>",
// "queens-<n>", "primes-<limit>").
func BenchmarkByName(name string) (Benchmark, bool) { return bench.ByName(name) }

// BenchmarkNames returns the name of every fixed benchmark (the paper
// suite, the large sequential suite and deriv-checked); the
// parameterized variants documented on BenchmarkByName resolve in
// addition to these.
func BenchmarkNames() []string { return bench.Names() }

// EmulatorVersion identifies the trace-relevant behaviour of the
// engine + compiler + benchmark stack. It participates in trace-store
// keys: stored traces from other versions are ignored rather than
// silently replayed.
func EmulatorVersion() string { return core.EmulatorVersion }

// RunBenchmark executes a benchmark with the given parallelism,
// validating its answer. Cancelling ctx aborts the emulator mid-run
// and returns ctx.Err().
func RunBenchmark(ctx context.Context, b Benchmark, pes int, sequential bool) (*Result, error) {
	res, err := bench.Run(ctx, b, bench.RunConfig{PEs: pes, Sequential: sequential})
	if err != nil {
		return nil, err
	}
	return newResult(res), nil
}

// TraceBenchmark runs a benchmark capturing its memory trace.
func TraceBenchmark(ctx context.Context, b Benchmark, pes int, sequential bool) (*Trace, error) {
	buf, _, err := bench.Trace(ctx, b, pes, sequential)
	if err != nil {
		return nil, err
	}
	return &Trace{buf: buf}, nil
}

// TraceBenchmarkTo streams a benchmark's memory trace into sink as it
// is generated, without buffering it — the streaming counterpart of
// TraceBenchmark for runs whose traces should not be materialized
// (e.g. the engine feeding cache simulators directly).
func TraceBenchmarkTo(ctx context.Context, b Benchmark, pes int, sequential bool, sink Sink) (*Result, error) {
	res, err := bench.Run(ctx, b, bench.RunConfig{PEs: pes, Sequential: sequential, Sink: sink})
	if err != nil {
		return nil, err
	}
	return newResult(res), nil
}

package rapwam

import (
	"io"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Trace is a captured memory-reference trace: the interchange format
// between the abstract machine and the cache simulators (the paper's
// Figure 1 pipeline).
type Trace struct {
	buf *trace.Buffer
}

// Len returns the number of references.
func (t *Trace) Len() int { return t.buf.Len() }

// Replay streams the trace into sink in emission order.
func (t *Trace) Replay(sink Sink) { t.buf.Replay(sink) }

// ReplayAll replays the trace through every cache configuration in a
// single concurrent pass: one simulator per configuration, each driven
// on its own goroutine while the trace is walked once (the streaming
// fan-out pipeline). Per-configuration statistics are bit-identical to
// calling SimulateCache once per configuration — only the wall-clock
// cost changes.
func (t *Trace) ReplayAll(cfgs []CacheConfig) ([]CacheStats, error) {
	return cache.SimulateAll(t.buf, cfgs)
}

// WriteTo serializes the trace in the binary trace-file format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) { return t.buf.WriteTo(w) }

// ReadTrace parses a binary trace file.
func ReadTrace(r io.Reader) (*Trace, error) {
	buf := &trace.Buffer{}
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return &Trace{buf: buf}, nil
}

// Protocol re-exports the coherency protocol selector.
type Protocol = cache.Protocol

// Coherency protocols (see the cache package for semantics).
const (
	// WriteThrough is the conventional write-through invalidate cache.
	WriteThrough = cache.WriteThrough
	// WriteInBroadcast is the invalidation-based broadcast (copyback)
	// cache.
	WriteInBroadcast = cache.WriteInBroadcast
	// WriteThroughBroadcast is the update-based broadcast cache.
	WriteThroughBroadcast = cache.WriteThroughBroadcast
	// Hybrid is the paper's tag-driven write-through-global /
	// copyback-local scheme.
	Hybrid = cache.Hybrid
	// Copyback is a plain write-back cache (single PE only).
	Copyback = cache.Copyback
)

// CacheConfig re-exports the cache simulator configuration.
type CacheConfig = cache.Config

// CacheStats re-exports the simulator's statistics.
type CacheStats = cache.Stats

// CacheSim re-exports the multiprocessor cache simulator. It implements
// Sink, so it can be attached directly to a running Program (see
// RunConfig.Sink) or fed from a Trace.
type CacheSim = cache.Sim

// NewCacheSim validates cfg and builds a cache simulator ready to
// consume a reference stream.
func NewCacheSim(cfg CacheConfig) (*CacheSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.New(cfg), nil
}

// PaperWriteAllocate returns the allocation policy the paper selected
// for each protocol and cache size.
func PaperWriteAllocate(p Protocol, sizeWords int) bool {
	return cache.PaperWriteAllocate(p, sizeWords)
}

// SimulateCache replays a trace through one cache configuration.
func SimulateCache(t *Trace, cfg CacheConfig) (CacheStats, error) {
	if err := cfg.Validate(); err != nil {
		return CacheStats{}, err
	}
	sim := cache.New(cfg)
	t.buf.Replay(sim)
	return sim.Stats(), nil
}

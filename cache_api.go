package rapwam

import (
	"context"
	"io"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// Trace is a captured memory-reference trace: the interchange format
// between the abstract machine and the cache simulators (the paper's
// Figure 1 pipeline).
type Trace struct {
	buf *trace.Buffer
}

// Len returns the number of references.
func (t *Trace) Len() int { return t.buf.Len() }

// Replay streams the trace into sink in emission order.
func (t *Trace) Replay(sink Sink) { t.buf.Replay(sink) }

// ReplayAll replays the trace through every cache configuration in a
// single concurrent pass: one simulator per configuration, each driven
// on its own goroutine while the trace is walked once (the streaming
// fan-out pipeline). Per-configuration statistics are bit-identical to
// calling SimulateCache once per configuration — only the wall-clock
// cost changes.
func (t *Trace) ReplayAll(cfgs []CacheConfig) ([]CacheStats, error) {
	return cache.SimulateAll(t.buf, cfgs)
}

// ReplayAllShards is ReplayAll with intra-configuration parallelism:
// each set-associative configuration is additionally partitioned
// across up to shards set-shard workers, with per-shard statistics
// merged by a deterministic reduction — bit-identical to shards = 1.
// Fully associative configurations (one global LRU pool) cannot shard
// and automatically run sequentially; see EffectiveCacheShards.
func (t *Trace) ReplayAllShards(cfgs []CacheConfig, shards int) ([]CacheStats, error) {
	return cache.SimulateAllShards(t.buf, cfgs, shards)
}

// WriteTo serializes the trace in the legacy fixed-record binary
// format ("RWT1", 8 bytes per reference). Prefer WriteCompact for new
// files: it is roughly 4× smaller and CRC-protected.
func (t *Trace) WriteTo(w io.Writer) (int64, error) { return t.buf.WriteTo(w) }

// WriteCompact serializes the trace in the compact chunked format
// ("RWT2": delta/varint encoded, CRC-protected chunks, self-describing
// header — see docs/TRACE_FORMAT.md). meta carries the run parameters
// recorded in the header; its counts and object table are filled in by
// the encoder.
func (t *Trace) WriteCompact(w io.Writer, meta TraceMeta) error {
	return t.buf.WriteCompact(w, meta)
}

// ReadTrace parses a binary trace file in either format — the legacy
// fixed-record "RWT1" or the compact chunked "RWT2" — sniffing the
// magic bytes.
func ReadTrace(r io.Reader) (*Trace, error) {
	buf := &trace.Buffer{}
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return &Trace{buf: buf}, nil
}

// TraceMeta re-exports the compact trace metadata: the self-describing
// header (benchmark, PEs, sequential, emulator version, object-type
// table) plus footer-verified reference counts.
type TraceMeta = trace.Meta

// TraceStore re-exports the persistent, content-addressed trace store.
// A store is a directory of compact traces keyed by (benchmark, PEs,
// sequential, emulator version); experiment drivers and TraceBenchmark
// consult it before re-running the emulator, and replay from it
// streams chunk by chunk without materializing the trace. See
// internal/tracestore for the full contract.
type TraceStore = tracestore.Store

// TraceKey re-exports the store cell key.
type TraceKey = tracestore.Key

// OpenTraceStore creates (if needed) and opens a trace store directory.
// Attach it with SetTraceStore (or use SetTraceDir to do both).
func OpenTraceStore(dir string) (*TraceStore, error) { return tracestore.Open(dir) }

// TraceStoreKey returns the store key for a benchmark cell under the
// current emulator version.
func TraceStoreKey(benchmark string, pes int, sequential bool) TraceKey {
	return bench.StoreKey(benchmark, pes, sequential)
}

// EnsureTraceStored makes sure the attached trace store (SetTraceStore
// / SetTraceDir) holds the trace and run record for the benchmark
// cell, generating them with one streaming emulator run if absent.
// Generation of distinct cells may proceed concurrently; concurrent
// calls for the same cell run the emulator once. Cancelling ctx aborts
// an in-flight generation (the partial write is cleaned up) and
// returns ctx.Err().
func EnsureTraceStored(ctx context.Context, b Benchmark, pes int, sequential bool) (TraceKey, error) {
	return bench.EnsureStored(ctx, b, pes, sequential)
}

// TraceStoreEntry re-exports one stored trace found by TraceStore.List.
type TraceStoreEntry = tracestore.Entry

// ReadTraceFileMeta decodes the self-describing header of a compact
// trace file (without decoding the reference stream), returning the
// metadata and the file size.
func ReadTraceFileMeta(path string) (TraceMeta, int64, error) {
	return tracestore.ReadFileMeta(path)
}

// ReadTraceFileFull fully decodes a compact trace file — verifying
// every chunk CRC and the footer — and returns its metadata with
// authoritative totals (Refs, PerPE).
func ReadTraceFileFull(path string) (TraceMeta, error) {
	return tracestore.ReadFileFull(path)
}

// VerifyTraceFile fully decodes a compact trace file, reporting the
// first corruption (nil if the file is intact).
func VerifyTraceFile(path string) error { return tracestore.VerifyFile(path) }

// Protocol re-exports the coherency protocol selector.
type Protocol = cache.Protocol

// Coherency protocols (see the cache package for semantics).
const (
	// WriteThrough is the conventional write-through invalidate cache.
	WriteThrough = cache.WriteThrough
	// WriteInBroadcast is the invalidation-based broadcast (copyback)
	// cache.
	WriteInBroadcast = cache.WriteInBroadcast
	// WriteThroughBroadcast is the update-based broadcast cache.
	WriteThroughBroadcast = cache.WriteThroughBroadcast
	// Hybrid is the paper's tag-driven write-through-global /
	// copyback-local scheme.
	Hybrid = cache.Hybrid
	// Copyback is a plain write-back cache (single PE only).
	Copyback = cache.Copyback
)

// CacheConfig re-exports the cache simulator configuration.
type CacheConfig = cache.Config

// CacheStats re-exports the simulator's statistics.
type CacheStats = cache.Stats

// CacheSim re-exports the multiprocessor cache simulator. It implements
// Sink, so it can be attached directly to a running Program (see
// RunConfig.Sink) or fed from a Trace.
type CacheSim = cache.Sim

// NewCacheSim validates cfg and builds a cache simulator ready to
// consume a reference stream.
func NewCacheSim(cfg CacheConfig) (*CacheSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.New(cfg), nil
}

// PaperWriteAllocate returns the allocation policy the paper selected
// for each protocol and cache size.
func PaperWriteAllocate(p Protocol, sizeWords int) bool {
	return cache.PaperWriteAllocate(p, sizeWords)
}

// SimulateCache replays a trace through one cache configuration.
func SimulateCache(t *Trace, cfg CacheConfig) (CacheStats, error) {
	if err := cfg.Validate(); err != nil {
		return CacheStats{}, err
	}
	sim := cache.New(cfg)
	t.buf.Replay(sim)
	return sim.Stats(), nil
}

// SimulateCacheShards replays a trace through one cache configuration
// with up to shards set-shard replay workers (see ReplayAllShards);
// statistics are bit-identical to SimulateCache.
func SimulateCacheShards(t *Trace, cfg CacheConfig, shards int) (CacheStats, error) {
	st, err := cache.SimulateAllShards(t.buf, []cache.Config{cfg}, shards)
	if err != nil {
		return CacheStats{}, err
	}
	return st[0], nil
}

// EffectiveCacheShards reports how many set-shard workers a
// configuration can actually use when shards are requested: the
// request clamped to the configuration's set count, and always 1 for
// fully associative caches (Assoc = 0), whose single global LRU pool
// has no disjoint decomposition.
func EffectiveCacheShards(cfg CacheConfig, shards int) int {
	return cache.EffectiveShards(cfg, shards)
}
